"""Servers and network topology.

A :class:`Server` bundles CPU characteristics with a NIC; a
:class:`Network` wires servers together with links and offers a
datapath ``send`` plus a modelled control plane for the orchestrator.
Top-of-rack switching is folded into per-hop link delay, as the paper's
servers all hang off the same pair of ToR switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..sim import Simulator
from ..telemetry import NULL_TELEMETRY
from .impairment import DataImpairment
from .link import Link
from .nic import DEFAULT_NIC_PPS, NIC
from .packet import Packet

__all__ = ["Server", "Network", "ControlImpairment", "DEFAULT_CPU_HZ",
           "DEFAULT_HOP_DELAY_S"]

#: Xeon D-1540 clock (paper §7.1).
DEFAULT_CPU_HZ = 2.0e9

#: One-way server-to-server delay through the ToR switch.  §7.3 puts
#: the extra one-way network latency at 6--7 us; we use the midpoint.
DEFAULT_HOP_DELAY_S = 6.5e-6

#: 40 GbE data plane (paper §7.1).
DEFAULT_BANDWIDTH_BPS = 40e9


class Server:
    """A commodity server hosting middlebox/replica threads."""

    def __init__(self, sim: Simulator, name: str, n_cores: int = 8,
                 cpu_hz: float = DEFAULT_CPU_HZ,
                 nic_pps: float = DEFAULT_NIC_PPS,
                 nic_queues: Optional[int] = None,
                 nic_queue_depth: Optional[int] = None,
                 telemetry=None):
        self.sim = sim
        self.name = name
        self.n_cores = n_cores
        self.cpu_hz = cpu_hz
        nic_kwargs = {}
        if nic_queue_depth is not None:
            nic_kwargs["queue_depth"] = nic_queue_depth
        self.nic = NIC(sim, n_queues=nic_queues or n_cores,
                       pps_capacity=nic_pps, name=f"{name}/nic",
                       telemetry=telemetry, **nic_kwargs)
        self.failed = False
        self.region: Optional[str] = None  # set when placed in a cloud

    def cycles(self, n_cycles: float) -> float:
        """Convert CPU cycles to seconds at this server's clock."""
        return n_cycles / self.cpu_hz

    def fail(self) -> None:
        """Fail-stop: the server stops receiving and processing."""
        self.failed = True

    def restore(self) -> None:
        self.failed = False

    def __repr__(self):
        status = "FAILED" if self.failed else "up"
        return f"<Server {self.name} cores={self.n_cores} {status}>"


@dataclass
class ControlImpairment:
    """Seeded chaos applied to every control-plane message leg.

    Each direction of a control call (request and response) is an
    independent *leg*: a leg may be dropped (silence the caller's
    timeout logic must absorb), duplicated (handlers must be
    idempotent), and/or delayed.  ``expires_at`` lets the chaos monkey
    install bounded impairment windows.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    extra_delay_s: float = 0.0
    delay_jitter_s: float = 0.0
    expires_at: Optional[float] = None

    def active(self, now: float) -> bool:
        return self.expires_at is None or now < self.expires_at


class Network:
    """A set of servers and the links between them."""

    def __init__(self, sim: Simulator,
                 hop_delay_s: float = DEFAULT_HOP_DELAY_S,
                 bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS):
        self.sim = sim
        self.hop_delay_s = hop_delay_s
        self.bandwidth_bps = bandwidth_bps
        #: Control-plane transfer rate; WAN-limited in CloudNetwork.
        self.control_bandwidth_bps = bandwidth_bps
        self.servers: Dict[str, Server] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self.dropped_to_failed = 0
        self._impairment: Optional[ControlImpairment] = None
        self._impair_rng = None
        self._data_impairment: Optional[DataImpairment] = None
        self._data_rng = None
        #: Corrupted deliveries discarded at the receiver (FCS model).
        self.data_corrupt_dropped = 0
        self.control_messages = 0
        self.control_drops = 0
        self.control_dups = 0
        #: Control-plane partition: a tuple of frozensets of server
        #: names; messages whose src and dst fall in *different* groups
        #: are silently dropped on either leg.  Servers in no group
        #: (e.g. replicas spawned after the cut) are unaffected.
        self._partition: Optional[Tuple[frozenset, ...]] = None
        self.control_partition_drops = 0
        #: Set by the chain (or a test) to mirror control-plane counters
        #: into a metric registry; NULL_TELEMETRY keeps hooks no-op.
        self.telemetry = NULL_TELEMETRY

    # -- construction --------------------------------------------------------

    def add_server(self, name: str, **kwargs) -> Server:
        if name in self.servers:
            raise ValueError(f"duplicate server name {name!r}")
        kwargs.setdefault("telemetry", self.telemetry)
        server = Server(self.sim, name, **kwargs)
        self.servers[name] = server
        return server

    def _count_drop(self, site: str, packet=None) -> None:
        """Audit hook (PROTOCOL.md §12.2): no drop is ever silent."""
        self.telemetry.registry.counter(f"drops/{site}").inc()
        flight = self.telemetry.flight
        if flight.enabled:
            flight.record("net", site, t=self.sim.now,
                          pid=getattr(packet, "pid", None),
                          detail=f"dropped at {site}")

    def connect(self, src: str, dst: str,
                delay_s: Optional[float] = None,
                bandwidth_bps: Optional[float] = None) -> Link:
        """Create (or return) the unidirectional link src -> dst."""
        key = (src, dst)
        if key in self._links:
            return self._links[key]
        if src not in self.servers or dst not in self.servers:
            raise KeyError(f"unknown server in {key}")
        dst_server = self.servers[dst]

        def sink(packet, _dst=dst_server):
            if getattr(packet, "corrupted_wire", False):
                # No reliability layer adopted this link: the receiver
                # NIC's FCS check discards the damaged packet.
                self.data_corrupt_dropped += 1
                self._count_drop("net-corrupt", packet)
                return
            if _dst.failed:
                self.dropped_to_failed += 1
                self._count_drop("net-to-failed", packet)
                return
            _dst.nic.receive(packet)

        link = Link(self.sim, sink,
                    delay_s=self.hop_delay_s if delay_s is None else delay_s,
                    bandwidth_bps=bandwidth_bps or self.bandwidth_bps,
                    name=f"{src}->{dst}", telemetry=self.telemetry)
        if self._data_impairment is not None:
            # Links created later (e.g. by recovery wiring a respawned
            # replica) inherit the impairment currently installed.
            link.set_impairment(self._data_impairment, self._data_rng)
        self._links[key] = link
        return link

    def connect_all(self) -> None:
        """Full mesh (the paper's servers share ToR switches)."""
        names = list(self.servers)
        for src in names:
            for dst in names:
                if src != dst:
                    self.connect(src, dst)

    # -- data plane -----------------------------------------------------------

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src} -> {dst}; call connect() first") from None

    def send(self, src: str, dst: str, packet: Packet) -> None:
        """Transmit a packet from server ``src`` to server ``dst``."""
        if self.servers[src].failed:
            self.dropped_to_failed += 1
            self._count_drop("net-to-failed", packet)
            return
        self.link(src, dst).send(packet)

    def deliver_external(self, dst: str, packet: Packet) -> None:
        """Inject traffic from outside the topology (the generator)."""
        server = self.servers[dst]
        if server.failed:
            self.dropped_to_failed += 1
            self._count_drop("net-to-failed", packet)
            return
        server.nic.receive(packet)

    # -- control plane ----------------------------------------------------------

    def control_rtt(self, src: str, dst: str) -> float:
        """Round-trip time for control messages between two servers.

        Within one site this is twice the hop delay; a cloud model can
        override per-region delays by subclassing or monkey-patching.
        """
        if src == dst:
            return 0.0
        return 2.0 * self.hop_delay_s

    def impair(self, drop_rate: float = 0.0, dup_rate: float = 0.0,
               extra_delay_s: float = 0.0, delay_jitter_s: float = 0.0,
               duration_s: Optional[float] = None,
               seed: int = 0) -> ControlImpairment:
        """Install control-plane impairment (chaos fault injection).

        Applies to every subsequent :meth:`control_call` leg until
        ``duration_s`` elapses (or :meth:`clear_impairment`).  Draws
        come from a dedicated seeded stream so impaired runs stay
        exactly reproducible.
        """
        from ..sim import RandomStreams
        self._impairment = ControlImpairment(
            drop_rate=drop_rate, dup_rate=dup_rate,
            extra_delay_s=extra_delay_s, delay_jitter_s=delay_jitter_s,
            expires_at=(None if duration_s is None
                        else self.sim.now + duration_s))
        if self._impair_rng is None:
            self._impair_rng = RandomStreams(seed).stream("control-impairment")
        return self._impairment

    def clear_impairment(self) -> None:
        self._impairment = None

    # -- control-plane partitions -------------------------------------------------

    def partition(self, *groups) -> Tuple[frozenset, ...]:
        """Partition the control plane into ``groups`` of server names.

        Messages between servers in different groups are dropped on
        whichever leg crosses the cut -- silence, exactly like a dropped
        impaired leg, so the retry layer's timeouts absorb it.  Servers
        not named in any group keep full connectivity (a replica spawned
        mid-partition is outside the cut).  Returns a token that
        :meth:`heal` accepts, so overlapping chaos windows only heal
        their own cut.
        """
        token = tuple(frozenset(group) for group in groups)
        self._partition = token
        return token

    def heal(self, token: Optional[Tuple[frozenset, ...]] = None) -> None:
        """Remove the current partition (or only ``token``'s, if given)."""
        if token is None or self._partition == token:
            self._partition = None

    def control_blocked(self, src: str, dst: str) -> bool:
        """True when a control message src -> dst crosses the partition."""
        if self._partition is None or src == dst:
            return False
        src_group = next((i for i, g in enumerate(self._partition)
                          if src in g), None)
        dst_group = next((i for i, g in enumerate(self._partition)
                          if dst in g), None)
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    # -- data-plane impairment ---------------------------------------------------

    def impair_data(self, drop_rate: float = 0.0, dup_rate: float = 0.0,
                    reorder_rate: float = 0.0, corrupt_rate: float = 0.0,
                    reorder_delay_s: Optional[float] = None,
                    duration_s: Optional[float] = None,
                    seed: int = 0,
                    links: Optional[Tuple[Tuple[str, str], ...]] = None
                    ) -> DataImpairment:
        """Install data-plane impairment on links (chaos fault injection).

        The data-plane twin of :meth:`impair`: every packet offered to
        an affected link may be dropped, duplicated, reordered, or
        corrupted until ``duration_s`` elapses (or
        :meth:`clear_data_impairment`).  ``links`` restricts the blast
        radius to specific ``(src, dst)`` pairs; by default every
        existing link -- and any link created later, e.g. by recovery
        -- is impaired.  Draws come from one dedicated seeded stream so
        impaired runs stay exactly reproducible.
        """
        from ..sim import RandomStreams
        kwargs = {} if reorder_delay_s is None else {
            "reorder_delay_s": reorder_delay_s}
        spec = DataImpairment(
            drop_rate=drop_rate, dup_rate=dup_rate,
            reorder_rate=reorder_rate, corrupt_rate=corrupt_rate,
            expires_at=(None if duration_s is None
                        else self.sim.now + duration_s), **kwargs)
        if self._data_rng is None:
            self._data_rng = RandomStreams(seed).stream("data-impairment")
        if links is None:
            self._data_impairment = spec
            targets = list(self._links.values())
        else:
            targets = [self.link(src, dst) for src, dst in links]
        for link in targets:
            link.set_impairment(spec, self._data_rng)
        return spec

    def clear_data_impairment(self) -> None:
        self._data_impairment = None
        for link in self._links.values():
            link.clear_impairment()

    def data_leg_lost(self) -> bool:
        """Draw whether one reverse-path leg (ACK/NACK) is lost.

        The reliability layer's acknowledgements travel against the
        data direction; they share the wire's fate, so an installed
        impairment's drop rate applies to them too (from the same
        stream, keeping runs seed-pure).
        """
        imp = self._data_impairment
        if imp is None or not imp.active(self.sim.now) or not imp.drop_rate:
            return False
        return self._data_rng.random() < imp.drop_rate

    def data_impairment_stats(self) -> Dict[str, int]:
        """Per-kind impairment totals summed over all links."""
        stats = {"dropped": 0, "duplicated": 0, "reordered": 0,
                 "corrupted": 0}
        for link in self._links.values():
            stats["dropped"] += link.impair_dropped
            stats["duplicated"] += link.impair_duplicated
            stats["reordered"] += link.impair_reordered
            stats["corrupted"] += link.impair_corrupted
        return stats

    def _impaired_leg(self) -> Tuple[int, float]:
        """(copies delivered, extra delay) for one control-message leg."""
        imp = self._impairment
        if imp is None or not imp.active(self.sim.now):
            return 1, 0.0
        rng = self._impair_rng
        copies = 1
        if imp.drop_rate and rng.random() < imp.drop_rate:
            copies = 0
            self.control_drops += 1
            self.telemetry.registry.counter("net/control_drops").inc()
        elif imp.dup_rate and rng.random() < imp.dup_rate:
            copies = 2
            self.control_dups += 1
            self.telemetry.registry.counter("net/control_dups").inc()
        extra = imp.extra_delay_s
        if imp.delay_jitter_s:
            extra += rng.uniform(0.0, imp.delay_jitter_s)
        return copies, extra

    def control_call(self, src: str, dst: str,
                     handler: Callable[[], object],
                     payload_bytes: int = 256,
                     response_bytes: int = 256):
        """Simulate an RPC: returns an event with the handler's result.

        The handler runs on ``dst`` after a one-way delay; the result
        arrives back at ``src`` after transfer of ``response_bytes``.
        Either leg may be dropped/duplicated/delayed while an
        impairment is installed -- silence is the caller's problem
        (see ``repro.net.retry`` for the timeout/retry wrapper).
        """
        done = self.sim.event()
        one_way = self.control_rtt(src, dst) / 2.0
        transfer = ((payload_bytes + response_bytes) * 8.0 /
                    self.control_bandwidth_bps)
        self.control_messages += 1
        self.telemetry.registry.counter("net/control_messages").inc()

        def at_destination():
            if self.servers[dst].failed:
                # The caller's timeout logic must handle silence.
                return
            result = handler()
            if self.control_blocked(dst, src):
                # The response leg crosses a partition installed since
                # (or during) the request: the reply never arrives.
                self.control_partition_drops += 1
                return
            copies, extra = self._impaired_leg()
            for _ in range(copies):
                self.sim.schedule_callback(
                    one_way + transfer + extra,
                    lambda: None if done.triggered else done.succeed(result))

        if self.control_blocked(src, dst):
            self.control_partition_drops += 1
            return done  # the request leg is cut; silence for the caller
        copies, extra = self._impaired_leg()
        for _ in range(copies):
            self.sim.schedule_callback(one_way + extra, at_destination)
        return done
