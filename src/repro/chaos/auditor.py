"""Invariant auditing against a shadow oracle (§4, §5).

The protocol's correctness rests on a handful of invariants the paper
states informally; the auditor checks them against the live chain at
any instant (and more strictly at quiescence):

1. **Log propagation** (§4.2): within a replication group, each
   member's MAX vector is entry-wise >= its successor's -- state flows
   head -> tail, so a successor can never be ahead of its predecessor.
2. **Release safety** (§5, the buffer's contract): a packet is
   released only after its state updates are replicated f+1 times, so
   every alive group member's store must already account for at least
   the released packets (checked via each Monitor's counters against
   the shadow oracle's release count).
3. **Pruning bound** (§4.3): commit floors never exceed MAX, and no
   retained log sits entirely below the floor (it would have been
   pruned -- keeping it means pruning is broken, dropping others early
   would break retransmission).
4. **Recovery consistency / convergence** (§5.2, quiescent only): with
   traffic stopped and commit vectors drained, all alive members of a
   group hold identical stores and MAX vectors with nothing pending.

The :class:`ShadowOracle` wraps the chain's ``deliver`` callback and
is the ground truth for what left the chain: release count, duplicate
releases (packet ids must be unique), and per-middlebox floors.
Checks skip positions that are mid-recovery or frozen (their state is
legitimately in flux) and a chain that has declared degraded mode
(state loss past f is announced, not hidden).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from ..core.chain import FTCChain
from ..middlebox.monitor import Monitor
from ..net.packet import FlowKey, Packet

__all__ = ["InvariantViolation", "ShadowOracle", "InvariantAuditor"]


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation of a protocol invariant.

    ``context`` makes the violation self-describing wherever it
    surfaces (CI logs, flight dumps): the seed, virtual time, and chain
    configuration needed to reproduce the run that tripped it.  The
    dataclass stays frozen; the context dict is carried by reference
    and never hashed.
    """

    invariant: str
    detail: str
    at_s: float
    context: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        return {"invariant": self.invariant, "detail": self.detail,
                "at_s": self.at_s, "context": dict(self.context or {})}

    def __str__(self):
        base = f"[{self.at_s * 1e3:.3f}ms] {self.invariant}: {self.detail}"
        if self.context:
            ctx = " ".join(f"{key}={value}"
                           for key, value in sorted(self.context.items()))
            return f"{base} ({ctx})"
        return base


class ShadowOracle:
    """Ground truth observer on the chain egress.

    Install as (or inside) the chain's ``deliver`` callable; it counts
    and uniquifies released packets independently of the protocol
    machinery under test.
    """

    def __init__(self, inner: Optional[Callable[[Packet], None]] = None,
                 track_order: bool = False):
        self.inner = inner
        self.released = 0
        self.duplicate_releases = 0
        self._seen: Set[int] = set()
        #: When tracking order (impaired soaks): full egress pid
        #: sequence for bit-identical determinism comparison, plus a
        #: per-flow monotonicity check -- exactly-once delivery must
        #: also be *ordered* within each flow (PROTOCOL.md §8).
        self.track_order = track_order
        self.order: List[int] = []
        self.out_of_order = 0
        self._flow_last: Dict[FlowKey, int] = {}

    def __call__(self, packet: Packet) -> None:
        self.released += 1
        if packet.pid in self._seen:
            self.duplicate_releases += 1
        self._seen.add(packet.pid)
        if self.track_order:
            self.order.append(packet.pid)
            last = self._flow_last.get(packet.flow)
            if last is not None and packet.pid < last:
                self.out_of_order += 1
            self._flow_last[packet.flow] = packet.pid
        if self.inner is not None:
            self.inner(packet)


class InvariantAuditor:
    """Checks the §4/§5 invariants on a live chain."""

    def __init__(self, chain: FTCChain, oracle: Optional[ShadowOracle] = None,
                 orchestrator=None, context: Optional[Dict[str, Any]] = None,
                 brownout=None):
        self.chain = chain
        self.oracle = oracle
        self.orchestrator = orchestrator
        self.brownout = brownout
        #: Run provenance (seed, chain config, schedule index) stamped
        #: onto every violation so a bare assertion message in a CI log
        #: is enough to reproduce the failing run.
        self.context: Dict[str, Any] = dict(context or {})
        self.violations: List[InvariantViolation] = []
        self.audits = 0

    # -- helpers -----------------------------------------------------------------

    def _flag(self, invariant: str, detail: str) -> None:
        context = dict(self.context)
        context.setdefault("chain_length", len(self.chain.middleboxes))
        context.setdefault("f", self.chain.f)
        violation = InvariantViolation(
            invariant=invariant, detail=detail, at_s=self.chain.sim.now,
            context=context)
        self.violations.append(violation)
        flight = self.chain.telemetry.flight
        if flight.enabled:
            flight.record("chaos", "violation", t=self.chain.sim.now,
                          detail=str(violation), chain="ctrl")
            flight.trip(f"invariant:{invariant}",
                        telemetry=self.chain.telemetry, t=self.chain.sim.now)

    def _in_flux(self) -> Set[int]:
        """Positions whose state is legitimately inconsistent right now."""
        flux = set(self.chain.failed_positions())
        if self.orchestrator is not None:
            flux |= self.orchestrator.recovering_positions
            flux |= self.orchestrator.lost_positions
        return flux

    def _stable_members(self, mbox_index: int) -> List[int]:
        flux = self._in_flux()
        members = []
        for position in self.chain.group_positions(mbox_index):
            if position in flux:
                continue
            state = self.chain.replicas[position].states.get(
                self.chain.middleboxes[mbox_index].name)
            if state is None or state.frozen:
                continue
            members.append(position)
        return members

    # -- the invariants --------------------------------------------------------------

    def check_log_propagation(self) -> None:
        """Invariant 1: MAX flows monotonically down each group."""
        for index, mbox in enumerate(self.chain.middleboxes):
            group = self.chain.group_positions(index)
            flux = self._in_flux()
            chain_members = [p for p in group if p not in flux]
            for pred, succ in zip(chain_members, chain_members[1:]):
                pred_state = self.chain.replicas[pred].states[mbox.name]
                succ_state = self.chain.replicas[succ].states[mbox.name]
                if pred_state.frozen or succ_state.frozen:
                    continue
                for partition, seq in succ_state.max.items():
                    if seq > pred_state.max.get(partition, 0):
                        self._flag(
                            "log-propagation",
                            f"{mbox.name}: successor p{succ} ahead of "
                            f"p{pred} on partition {partition} "
                            f"({seq} > {pred_state.max.get(partition, 0)})")

    def check_release_safety(self) -> None:
        """Invariant 2: released packets are replicated f+1 times."""
        if self.oracle is None:
            return
        if self.oracle.duplicate_releases:
            self._flag("release-safety",
                       f"{self.oracle.duplicate_releases} duplicate releases")
        baselines = getattr(self.chain, "mbox_release_baseline", {})
        for index, mbox in enumerate(self.chain.middleboxes):
            if not isinstance(mbox, Monitor):
                continue  # only Monitors expose a countable oracle view
            # A middlebox inserted mid-run (§11) never saw the packets
            # released before its insert; account from that floor.
            expected = self.oracle.released - baselines.get(mbox.name, 0)
            for position in self._stable_members(index):
                store = self.chain.store_of(mbox.name, position)
                counted = mbox.total_count(store)
                if counted < expected:
                    self._flag(
                        "release-safety",
                        f"{mbox.name} replica p{position} accounts for "
                        f"{counted} packets < {expected} released since "
                        f"it joined the chain")

    def check_pruning_bound(self) -> None:
        """Invariant 3: floors bounded by MAX; retained logs above floor."""
        for index, mbox in enumerate(self.chain.middleboxes):
            for position in self._stable_members(index):
                state = self.chain.replicas[position].states[mbox.name]
                floor = state.commit_floor
                for partition, committed in floor.items():
                    if committed > state.max.get(partition, 0):
                        self._flag(
                            "pruning-bound",
                            f"{mbox.name} p{position}: commit floor "
                            f"{committed} exceeds MAX "
                            f"{state.max.get(partition, 0)} on partition "
                            f"{partition}")
                for log in state.retained:
                    if log.depvec and all(
                            seq + 1 <= floor.get(partition, 0)
                            for partition, seq in log.depvec.items()):
                        self._flag(
                            "pruning-bound",
                            f"{mbox.name} p{position}: fully-committed log "
                            f"{log!r} not pruned")

    def check_timeline_consistency(self) -> None:
        """Telemetry invariant: committed timeline attempts must carry
        per-phase durations summing exactly to some recovery report's
        total (the §5.2 phases partition the recovery span)."""
        if self.orchestrator is None:
            return
        telemetry = getattr(self.orchestrator, "telemetry", None)
        if telemetry is None or not telemetry.timeline.enabled:
            return
        totals = [a.total_s for a in telemetry.timeline.committed_attempts()]
        seen: Set[int] = set()
        for event in self.orchestrator.history:
            report = event.report
            if report is None or id(report) in seen:
                continue
            seen.add(id(report))
            if not any(abs(t - report.total_s) <= 1e-12 for t in totals):
                self._flag(
                    "timeline-consistency",
                    f"recovery report total {report.total_s * 1e3:.6f}ms for "
                    f"positions {report.positions} has no matching committed "
                    f"timeline attempt (attempt totals: "
                    f"{[round(t * 1e3, 6) for t in totals]}ms)")

    def check_control_plane(self) -> None:
        """PROTOCOL.md §9 invariants on a replicated control plane.

        Only active when ``orchestrator`` is an
        :class:`~repro.orchestration.ensemble.OrchestratorEnsemble`:

        * **at-most-one-lease**: no instant may see two members holding
          unexpired leases (the single global clock makes this exact);
        * **one-leader-per-epoch**: the election log never records the
          same epoch twice (grants are durable and monotonic);
        * **no-double-recovery**: the chain-side epoch gate never
          applies two re-steers replacing the *same* dead server --
          the split-brain signature fencing exists to prevent.
        """
        ensemble = self.orchestrator
        if ensemble is None or not hasattr(ensemble, "election_log"):
            return
        valid = ensemble.leaders_with_valid_lease()
        if len(valid) > 1:
            self._flag(
                "dual-leader",
                f"{len(valid)} members hold unexpired leases: "
                f"{[f'm{m.index}@{m.epoch}' for m in valid]}")
        epochs = [epoch for epoch, _ in ensemble.election_log]
        if len(epochs) != len(set(epochs)):
            dupes = sorted({e for e in epochs if epochs.count(e) > 1})
            self._flag(
                "leader-per-epoch",
                f"epochs won more than once: {dupes} "
                f"(log: {ensemble.election_log})")
        replaced: Dict[str, object] = {}
        for command in ensemble.gate.applied:
            if command.kind != "re-steer" or not command.detail:
                continue
            # detail = "replace <dead server> with <new server>"
            old = command.detail.split(" with ")[0]
            first = replaced.setdefault(old, command)
            if first is not command and first.epoch != command.epoch:
                self._flag(
                    "double-recovery",
                    f"{old!r} re-steered under epoch {first.epoch} and "
                    f"again under epoch {command.epoch}")

    def check_overload(self) -> None:
        """PROTOCOL.md §12 invariants on an admission-gated chain.

        Only active when the chain carries an
        :class:`~repro.core.admission.AdmissionControl`:

        * **no-in-chain-drop**: with ingress shedding in force nothing
          past the classifier may be dropped -- every NIC's
          ``rx_dropped`` and the buffer's overflow counter must be
          zero (an in-chain drop loses replicated state the piggyback
          protocol already accounted for);
        * **queue-bounds**: every registered pressure source's peak
          occupancy stays within the largest bound that was in force
          (chaos may shrink a bound below already-enqueued work);
        * **shed-conservation**: ``offered == admitted + shed``,
          overall and per class -- no packet vanishes at the gate
          without being counted and flight-logged;
        * **shed-ordering**: cumulative shed fractions are monotone
          non-increasing with priority class (lower classes starve
          first, by at least as much).
        """
        admission = self.chain.admission
        if admission is None:
            return
        for position, replica in enumerate(self.chain.replicas):
            nic = replica.server.nic
            if nic.rx_dropped:
                self._flag("no-in-chain-drop",
                           f"NIC at p{position} tail-dropped "
                           f"{nic.rx_dropped} packets despite admission gate")
        if self.chain.buffer.overflow_dropped:
            self._flag("no-in-chain-drop",
                       f"buffer overflow-dropped "
                       f"{self.chain.buffer.overflow_dropped} packets "
                       f"despite admission gate")
        if admission.bus is not None:
            for source in admission.bus.sources:
                limit = max(source.bound_peak, source.bound)
                if source.peak > limit:
                    self._flag("queue-bounds",
                               f"pressure source {source.name!r} peaked at "
                               f"{source.peak} > bound {limit}")
        if admission.offered != admission.admitted + admission.shed:
            self._flag("shed-conservation",
                       f"offered {admission.offered} != admitted "
                       f"{admission.admitted} + shed {admission.shed}")
        for cls in range(admission.n_classes):
            offered = admission.offered_by_class[cls]
            accounted = (admission.admitted_by_class[cls]
                         + admission.shed_by_class[cls])
            if offered != accounted:
                self._flag("shed-conservation",
                           f"class {cls}: offered {offered} != "
                           f"admitted+shed {accounted}")
        fractions = [
            (admission.shed_by_class[cls] / offered if offered else 0.0)
            for cls in range(admission.n_classes)
            for offered in (admission.offered_by_class[cls],)]
        for cls in range(1, admission.n_classes):
            # Tolerance absorbs integer granularity on tiny samples.
            if (admission.offered_by_class[cls] >= 100
                    and admission.offered_by_class[cls - 1] >= 100
                    and fractions[cls] > fractions[cls - 1] + 0.05):
                self._flag(
                    "shed-ordering",
                    f"class {cls} shed {fractions[cls]:.1%} > lower "
                    f"class {cls - 1} shed {fractions[cls - 1]:.1%}")

    def check_brownout(self, quiescent: bool = False) -> None:
        """§12.3: brownout transitions are journaled 1:1 and the
        controller always returns to level 0 once pressure clears."""
        brownout = self.brownout
        if brownout is None:
            return
        if brownout.journal is not None \
                and brownout.transitions != brownout.journaled:
            self._flag(
                "brownout-journal",
                f"{len(brownout.transitions)} transitions vs "
                f"{len(brownout.journaled)} journaled entries")
        enters = sum(1 for tr in brownout.transitions if tr.kind == "enter")
        exits = sum(1 for tr in brownout.transitions if tr.kind == "exit")
        if quiescent:
            if not brownout.balanced():
                self._flag(
                    "brownout-exit",
                    f"still at level {brownout.level} at quiescence "
                    f"(timeline: {brownout.timeline()})")
            if enters != exits:
                self._flag(
                    "brownout-exit",
                    f"{enters} enters vs {exits} exits at quiescence")
        elif exits > enters:
            self._flag("brownout-exit",
                       f"{exits} exits but only {enters} enters")

    def check_convergence(self) -> None:
        """Invariant 4 (quiescent): group members hold identical state."""
        for index, mbox in enumerate(self.chain.middleboxes):
            members = self._stable_members(index)
            if len(members) < 2:
                continue
            head = members[0]
            head_state = self.chain.replicas[head].states[mbox.name]
            reference = head_state.store.snapshot()
            for position in members[1:]:
                state = self.chain.replicas[position].states[mbox.name]
                if state.pending:
                    self._flag(
                        "recovery-consistency",
                        f"{mbox.name} p{position}: {len(state.pending)} "
                        f"logs still pending at quiescence")
                if state.max != head_state.max:
                    self._flag(
                        "recovery-consistency",
                        f"{mbox.name} p{position}: MAX {state.max} != "
                        f"head p{head} MAX {head_state.max}")
                if state.store.snapshot() != reference:
                    self._flag(
                        "recovery-consistency",
                        f"{mbox.name} p{position}: store diverges from "
                        f"head p{head}")

    # -- entry point -----------------------------------------------------------------

    def audit(self, quiescent: bool = False) -> List[InvariantViolation]:
        """Run all applicable checks; returns violations found *this* call."""
        self.audits += 1
        before = len(self.violations)
        # Election safety holds regardless of data-plane degradation --
        # a degraded chain still must not see two fenced leaders.
        self.check_control_plane()
        # Overload invariants hold even degraded: shedding stays at
        # ingress and counted no matter what the data plane lost.
        self.check_overload()
        self.check_brownout(quiescent=quiescent)
        if self.chain.degraded:
            return self.violations[before:]
        self.check_log_propagation()
        self.check_release_safety()
        self.check_pruning_bound()
        self.check_timeline_consistency()
        if quiescent:
            self.check_convergence()
        return self.violations[before:]
