"""Randomized fault injection (the chaos monkey).

A :class:`ChaosMonkey` is a simulation process that samples faults
from configurable distributions: exponentially-spaced arrival times,
weighted fault kinds, uniformly-chosen target positions.  All draws
come from named :class:`repro.sim.RandomStreams` streams, so a
schedule is a pure function of its seed -- any soak failure reproduces
exactly from ``--seed``.

By default crashes are gated on :meth:`FTCChain.safe_to_fail`, keeping
every replication group within its f-loss budget (the protocol's
correctness envelope, §4).  Disable the gate (``respect_f=False``) to
also exercise the >f degraded path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.chain import FTCChain
from ..orchestration.orchestrator import Orchestrator
from ..sim import CancelledError, Interrupt

__all__ = ["ChaosMonkey", "DEFAULT_KIND_WEIGHTS"]

#: Relative odds of each fault kind per arrival.  ``impair-data`` and
#: the ``orch-*`` control-plane kinds are not in the default mix:
#: adding a kind would shift every draw and break seed-compatibility
#: with existing soak schedules -- opt in via ``kind_weights`` (the
#: impaired and control-plane soak modes do).
DEFAULT_KIND_WEIGHTS: Dict[str, float] = {
    "crash": 0.6,
    "crash-during-recovery": 0.2,
    "impair-control": 0.2,
}

#: The opt-in mix for control-plane soaks (PROTOCOL.md §9): chain
#: crashes keep recovery work in flight while ensemble members crash,
#: get partitioned off, and freeze past their leases.
CTRLPLANE_KIND_WEIGHTS: Dict[str, float] = {
    "crash": 0.4,
    "orch-crash": 0.25,
    "orch-partition": 0.2,
    "stale-leader-resume": 0.15,
}

#: The opt-in mix for overload soaks (PROTOCOL.md §12): flash crowds
#: and slow middleboxes pile pressure on while crashes keep recovery
#: in flight, proving admission + backpressure hold the replication
#: invariant with everything happening at once.
OVERLOAD_KIND_WEIGHTS: Dict[str, float] = {
    "crash": 0.25,
    "flash-crowd": 0.35,
    "slow-middlebox": 0.25,
    "queue-pressure": 0.15,
}


class ChaosMonkey:
    """A process injecting random (but seed-reproducible) faults."""

    def __init__(self, chain: FTCChain, orchestrator: Orchestrator,
                 mean_interval_s: float = 10e-3,
                 kind_weights: Optional[Dict[str, float]] = None,
                 max_faults: Optional[int] = None,
                 start_after_s: float = 0.0,
                 respect_f: bool = True,
                 impair_drop_rate: float = 0.3,
                 impair_dup_rate: float = 0.1,
                 impair_duration_s: float = 5e-3,
                 data_drop_rate: float = 0.05,
                 data_dup_rate: float = 0.02,
                 data_reorder_rate: float = 0.02,
                 data_corrupt_rate: float = 0.01,
                 ensemble=None,
                 orch_restart_after_s: float = 15e-3,
                 orch_partition_s: float = 8e-3,
                 orch_pause_s: float = 12e-3,
                 workload=None,
                 overload_factor: float = 4.0,
                 overload_duration_s: float = 6e-3,
                 stream: str = "chaos-monkey"):
        self.chain = chain
        self.orchestrator = orchestrator
        #: Target of the ``orch-*`` kinds; pass the
        #: :class:`~repro.orchestration.ensemble.OrchestratorEnsemble`
        #: (usually also as ``orchestrator`` -- it mirrors the facade).
        self.ensemble = ensemble
        self.orch_restart_after_s = orch_restart_after_s
        self.orch_partition_s = orch_partition_s
        self.orch_pause_s = orch_pause_s
        #: Target of the ``flash-crowd`` kind (a WorkloadGenerator).
        self.workload = workload
        self.overload_factor = overload_factor
        self.overload_duration_s = overload_duration_s
        self.mean_interval_s = mean_interval_s
        self.kind_weights = dict(kind_weights or DEFAULT_KIND_WEIGHTS)
        self.max_faults = max_faults
        self.start_after_s = start_after_s
        self.respect_f = respect_f
        self.impair_drop_rate = impair_drop_rate
        self.impair_dup_rate = impair_dup_rate
        self.impair_duration_s = impair_duration_s
        self.data_drop_rate = data_drop_rate
        self.data_dup_rate = data_dup_rate
        self.data_reorder_rate = data_reorder_rate
        self.data_corrupt_rate = data_corrupt_rate
        self.rng = chain.streams.stream(stream)
        #: (fire time, description) per injected fault.
        self.injected: List[Tuple[float, str]] = []
        self._pending_recovery_crash = False
        self._hooked = False
        self._process = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self._process = self.chain.sim.process(self._loop(), name="chaos-monkey")

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("chaos stopped")
        self._process = None

    @property
    def faults_injected(self) -> int:
        return len(self.injected)

    # -- sampling ----------------------------------------------------------------

    def _pick_kind(self) -> str:
        kinds = list(self.kind_weights)
        total = sum(self.kind_weights[k] for k in kinds)
        draw = self.rng.uniform(0.0, total)
        for kind in kinds:
            draw -= self.kind_weights[kind]
            if draw <= 0:
                return kind
        return kinds[-1]

    def _pick_crash_position(self) -> Optional[int]:
        pending = (self.orchestrator.recovering_positions |
                   self.orchestrator.lost_positions)
        candidates = [
            p for p in range(self.chain.n_positions)
            if p not in pending and not self.chain.server_at(p).failed
            and (not self.respect_f or self.chain.safe_to_fail(p, pending))
        ]
        if not candidates:
            return None
        return candidates[self.rng.randrange(len(candidates))]

    # -- the loop -----------------------------------------------------------------

    def _loop(self):
        sim = self.chain.sim
        try:
            if self.start_after_s > 0:
                yield sim.timeout(self.start_after_s)
            while self.max_faults is None or len(self.injected) < self.max_faults:
                yield sim.timeout(self.rng.expovariate(1.0 / self.mean_interval_s))
                kind = self._pick_kind()
                if kind == "crash":
                    self._do_crash()
                elif kind == "crash-during-recovery":
                    self._arm_recovery_crash()
                elif kind == "impair-data":
                    self._do_impair_data()
                elif kind == "orch-crash":
                    self._do_orch_crash()
                elif kind == "orch-partition":
                    self._do_orch_partition()
                elif kind == "stale-leader-resume":
                    self._do_stale_leader_resume()
                elif kind == "flash-crowd":
                    self._do_flash_crowd()
                elif kind == "slow-middlebox":
                    self._do_slow_middlebox()
                elif kind == "queue-pressure":
                    self._do_queue_pressure()
                else:
                    self._do_impair()
        except (Interrupt, CancelledError):
            return

    def _record(self, what: str, positions: Tuple[int, ...] = ()) -> None:
        now = self.chain.sim.now
        self.injected.append((now, what))
        self.orchestrator.telemetry.timeline.record(
            "fault-injected", positions, detail=what, t=now)

    def _do_crash(self) -> None:
        position = self._pick_crash_position()
        if position is None:
            return  # every further crash would exceed some group's f
        self.chain.fail_position(position)
        self._record(f"crash p{position}", positions=(position,))

    def _do_impair(self) -> None:
        self.chain.net.impair(
            drop_rate=self.impair_drop_rate, dup_rate=self.impair_dup_rate,
            duration_s=self.impair_duration_s)
        self._record(f"impair control drop={self.impair_drop_rate} "
                     f"dup={self.impair_dup_rate} "
                     f"for {self.impair_duration_s * 1e3:.1f}ms")

    def _do_impair_data(self) -> None:
        self.chain.net.impair_data(
            drop_rate=self.data_drop_rate, dup_rate=self.data_dup_rate,
            reorder_rate=self.data_reorder_rate,
            corrupt_rate=self.data_corrupt_rate,
            duration_s=self.impair_duration_s)
        self._record(f"impair data drop={self.data_drop_rate} "
                     f"dup={self.data_dup_rate} "
                     f"reorder={self.data_reorder_rate} "
                     f"corrupt={self.data_corrupt_rate} "
                     f"for {self.impair_duration_s * 1e3:.1f}ms")

    def _pick_member(self, require_quorum: bool = False):
        """A random non-crashed, non-paused ensemble member.

        ``require_quorum`` refuses picks that would leave fewer alive
        members than a majority -- a quorumless ensemble *correctly*
        freezes (no leader, no commands), which is the one outcome a
        soak cannot distinguish from a livelock, so the monkey keeps
        the ensemble electable by construction.
        """
        if self.ensemble is None:
            return None
        candidates = [m for m in self.ensemble.members
                      if not m.crashed and not m.paused]
        if not candidates:
            return None
        if require_quorum:
            majority = self.ensemble.members[0].majority
            if self.ensemble.alive_members - 1 < majority:
                return None
        return candidates[self.rng.randrange(len(candidates))]

    def _do_orch_crash(self) -> None:
        member = self._pick_member(require_quorum=True)
        if member is None:
            return
        member.crash()
        self._record(f"orch-crash m{member.index} "
                     f"(restart in {self.orch_restart_after_s * 1e3:.1f}ms)")
        self.chain.sim.schedule_callback(self.orch_restart_after_s,
                                         member.restart)

    def _do_orch_partition(self) -> None:
        member = self._pick_member()
        if member is None:
            return
        net = self.chain.net
        others = [name for name in net.servers if name != member.server_name]
        token = net.partition([member.server_name], others)
        self.chain.sim.schedule_callback(self.orch_partition_s,
                                         lambda: net.heal(token))
        self._record(f"orch-partition m{member.index} for "
                     f"{self.orch_partition_s * 1e3:.1f}ms")

    def _do_stale_leader_resume(self) -> None:
        """Freeze the current leader past its lease; it resumes stale."""
        if self.ensemble is None:
            return
        leader = self.ensemble.leader
        if leader is None:
            return  # mid-election: nothing to freeze
        leader.pause(self.orch_pause_s)
        self._record(f"pause leader m{leader.index} for "
                     f"{self.orch_pause_s * 1e3:.1f}ms (stale resume ahead)")

    # -- overload kinds (PROTOCOL.md §12) ----------------------------------------

    def _do_flash_crowd(self) -> None:
        workload = self.workload
        if workload is None:
            return
        factor = self.overload_factor
        workload.boost *= factor
        self.chain.sim.schedule_callback(
            self.overload_duration_s,
            lambda: setattr(workload, "boost", workload.boost / factor))
        self._record(f"flash-crowd x{factor:g} for "
                     f"{self.overload_duration_s * 1e3:.1f}ms")

    def _do_slow_middlebox(self) -> None:
        index = self.rng.randrange(self.chain.n_mboxes)
        mbox = self.chain.middleboxes[index]
        original = mbox.processing_cycles
        base = (original if original is not None
                else self.chain.costs.processing_cycles)
        mbox.processing_cycles = base * self.overload_factor

        def restore():
            mbox.processing_cycles = original

        self.chain.sim.schedule_callback(self.overload_duration_s, restore)
        self._record(f"slow-middlebox {mbox.name} x{self.overload_factor:g} "
                     f"for {self.overload_duration_s * 1e3:.1f}ms")

    def _do_queue_pressure(self) -> None:
        buffer = self.chain.buffer
        original = buffer.max_held
        buffer.max_held = max(64, int(original / self.overload_factor))

        def restore():
            buffer.max_held = original

        self.chain.sim.schedule_callback(self.overload_duration_s, restore)
        self._record(f"queue-pressure buffer bound {original} -> "
                     f"{buffer.max_held} for "
                     f"{self.overload_duration_s * 1e3:.1f}ms")

    def _arm_recovery_crash(self) -> None:
        """Next recovery that reaches the fetching phase loses a source."""
        if self._pending_recovery_crash:
            return
        self._pending_recovery_crash = True
        if not self._hooked:
            self.orchestrator.recovery_hooks.append(self._on_phase)
            self._hooked = True
        self._record("armed crash-during-recovery")

    def _on_phase(self, phase: str, positions: List[int]) -> None:
        if not self._pending_recovery_crash or phase != "fetching":
            return
        pending = set(positions) | self.orchestrator.lost_positions
        candidates = [
            p for p in range(self.chain.n_positions)
            if p not in pending and not self.chain.server_at(p).failed
            and (not self.respect_f or self.chain.safe_to_fail(p, pending))
        ]
        if not candidates:
            return  # stay armed for a later recovery with more headroom
        self._pending_recovery_crash = False
        target = candidates[self.rng.randrange(len(candidates))]
        self.chain.fail_position(target)
        self._record(f"crash p{target} during recovery of {positions}",
                     positions=(target,))
