"""Chaos soak: randomized fault schedules + invariant auditing.

One *schedule* builds a fresh Ch-n chain under FTC, runs traffic,
lets a :class:`ChaosMonkey` inject faults (crashes, crashes during
recovery, control-plane impairment), audits the §4/§5 invariants
periodically and once more at the end, and reports every violation.
A *soak* sweeps many schedules over (chain length, f) combinations,
each derived deterministically from the base seed -- a red schedule
is reproduced bit-for-bit by ``python -m repro chaos --seed N``.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core import FTCChain
from ..core.admission import AdmissionControl, BackpressureBus
from ..core.costs import CostModel
from ..flight import FlightRecorder
from ..flight.slo import SLOObjective, SLOWatchdog, run_probes
from ..metrics.meters import EgressRecorder
from ..middlebox import ch_n
from ..net import TrafficGenerator, balanced_flows
from ..net.flowgen import FlashCrowd, WorkloadGenerator, WorkloadSpec
from ..orchestration import Orchestrator, OrchestratorEnsemble
from ..orchestration.brownout import BrownoutController
from ..orchestration.election import ElectionConfig
from ..sim import RandomStreams, Simulator
from ..telemetry import MetricRegistry, Telemetry
from .auditor import InvariantAuditor, InvariantViolation, ShadowOracle
from .monkey import CTRLPLANE_KIND_WEIGHTS, ChaosMonkey
from .plan import FaultInjector, FaultPlan

__all__ = ["SoakConfig", "ScheduleResult", "SoakResult", "run_schedule",
           "run_impaired_schedule", "run_ctrlplane_schedule",
           "run_reconfig_schedule", "run_overload_schedule", "run_soak",
           "CTRLPLANE_ELECTION", "OverloadSpec", "OVERLOAD_COSTS"]

#: Deterministic cost model: chaos schedules must be a pure function of
#: the seed, so processing-time jitter is turned off.
SOAK_COSTS = CostModel(cycle_jitter_frac=0.0)

#: Overload soaks deliberately shrink the CPU so the chain's sustainable
#: capacity is known-low and a scripted flash crowd can exceed it by 4x
#: without needing millions of simulated packets per schedule.
OVERLOAD_COSTS = SOAK_COSTS.with_overrides(cpu_hz=1e7)

#: Audit cadence while the schedule runs.
AUDIT_INTERVAL_S = 2e-3


@dataclass(frozen=True)
class OverloadSpec:
    """Parameters of one flash-crowd overload schedule (PROTOCOL.md §12).

    Everything is expressed relative to ``sustainable_pps``, the
    chain's measured capacity under :data:`OVERLOAD_COSTS`, so one
    number recalibrates the whole scenario:

    * the workload idles at ``base_frac`` of capacity, then a scripted
      flash crowd multiplies it by ``flash_factor`` (default peak =
      ``0.6 * 8 = 4.8x`` capacity -- comfortably past the 4x bar);
    * admission budgets ``budget_frac`` of capacity -- deliberately
      *above* 1.0 so the flash genuinely overloads the data plane and
      brownout has something to do;
    * the run must still deliver ``goodput_floor_frac`` of capacity
      averaged end to end, and p99 latency is the SLO brownout acts on.
    """

    sustainable_pps: float = 20e3
    base_frac: float = 0.6
    budget_frac: float = 1.25
    flash_factor: float = 8.0
    flash_start_frac: float = 0.25
    flash_duration_frac: float = 0.3
    goodput_floor_frac: float = 0.25
    p99_limit_us: float = 800.0
    crash: bool = False
    orchestrators: int = 1

    def __post_init__(self):
        if self.sustainable_pps <= 0:
            raise ValueError("sustainable_pps must be positive")
        if not 0.0 < self.base_frac <= 1.0:
            raise ValueError("base_frac must be in (0, 1]")
        if self.budget_frac <= 0:
            raise ValueError("budget_frac must be positive")
        if self.flash_factor < 1.0:
            raise ValueError("flash_factor must be >= 1")
        if not 0.0 <= self.flash_start_frac < 1.0:
            raise ValueError("flash_start_frac must be in [0, 1)")
        if not 0.0 < self.flash_duration_frac <= 1.0 - self.flash_start_frac:
            raise ValueError("flash window must fit inside the schedule")
        if not 0.0 <= self.goodput_floor_frac < 1.0:
            raise ValueError("goodput_floor_frac must be in [0, 1)")
        if self.p99_limit_us <= 0:
            raise ValueError("p99_limit_us must be positive")
        if self.orchestrators < 1:
            raise ValueError("orchestrators must be >= 1")

    @property
    def peak_factor(self) -> float:
        """Peak offered load as a multiple of sustainable capacity."""
        return self.base_frac * self.flash_factor

    @classmethod
    def parse(cls, text: str) -> "OverloadSpec":
        """Parse ``key=value`` pairs (CLI ``--overload``), e.g.
        ``over=8,base=0.6,budget=1.25,floor=0.25,crash=1,orch=3``.

        Keys: ``sustain`` (pps), ``base``/``budget``/``floor``
        (fractions of capacity), ``over`` (flash multiplier),
        ``start``/``dur`` (flash window, fractions of the schedule),
        ``p99`` (us), ``crash`` (0/1), ``orch`` (ensemble size).
        """
        keymap = {"sustain": ("sustainable_pps", float),
                  "base": ("base_frac", float),
                  "budget": ("budget_frac", float),
                  "over": ("flash_factor", float),
                  "start": ("flash_start_frac", float),
                  "dur": ("flash_duration_frac", float),
                  "floor": ("goodput_floor_frac", float),
                  "p99": ("p99_limit_us", float),
                  "crash": ("crash", lambda v: bool(int(v))),
                  "orch": ("orchestrators", int)}
        kwargs: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"expected key=value, got {part!r}")
            key, _, value = part.partition("=")
            key = key.strip().lower()
            if key not in keymap:
                raise ValueError(f"unknown overload key {key!r} "
                                 f"(known: {', '.join(sorted(keymap))})")
            field_name, convert = keymap[key]
            try:
                kwargs[field_name] = convert(value)
            except ValueError as exc:
                raise ValueError(
                    f"bad value for {key!r}: {value!r}") from exc
        return cls(**kwargs)

    def describe(self) -> str:
        parts = [f"sustain={self.sustainable_pps:g}pps",
                 f"peak={self.peak_factor:g}x",
                 f"budget={self.budget_frac:g}x",
                 f"floor={self.goodput_floor_frac:g}x"]
        if self.crash:
            parts.append("crash=mid-flash")
        if self.orchestrators > 1:
            parts.append(f"orch={self.orchestrators}")
        return " ".join(parts)


@dataclass
class SoakConfig:
    """Sweep parameters for :func:`run_soak`."""

    seed: int = 0
    schedules: int = 50
    faults_per_schedule: int = 3
    chain_lengths: Sequence[int] = (2, 3, 4, 5)
    f_values: Sequence[int] = (1, 2)
    duration_s: float = 60e-3
    rate_pps: float = 2e4
    heartbeat_interval_s: float = 1e-3
    mean_fault_interval_s: float = 8e-3
    #: Collect per-schedule recovery timelines and an aggregate metric
    #: registry (purely observational; schedules stay bit-identical).
    telemetry: bool = False
    #: Data-plane impairment rates ``(drop, dup, reorder, corrupt)``.
    #: When set, the soak runs :func:`run_impaired_schedule` instead:
    #: reliable links + lossy data plane + exactly-once egress checks.
    impair_data: Optional[Tuple[float, float, float, float]] = None
    #: Orchestrator replicas.  ``> 1`` runs
    #: :func:`run_ctrlplane_schedule`: a leader-elected ensemble with
    #: epoch fencing replaces the single orchestrator (PROTOCOL.md §9).
    orchestrators: int = 1
    #: With ``orchestrators > 1``: also let the monkey crash, partition,
    #: and pause ensemble members (the ``orch-*`` fault kinds).
    orch_faults: bool = False
    #: Live-reconfiguration soak (PROTOCOL.md §11): each schedule runs
    #: a scripted sequence of reconfigurations (classifier, rescale,
    #: migrate, insert, remove) under traffic + lossy links, asserting
    #: zero loss and zero reorder end to end.
    reconfig: bool = False
    #: With ``reconfig``: also crash positions mid-reconfiguration
    #: (aborts are exercised; the zero-loss assertion is waived since a
    #: crash inherently loses in-flight packets -- invariants only).
    reconfig_crashes: bool = False
    #: Record a causal flight log per schedule (implies telemetry for
    #: that schedule); an invariant violation auto-dumps it to
    #: ``flight_dump_dir/flight-<index>.json`` for ``repro explain``.
    flight: bool = False
    flight_dump_dir: str = "flight-dumps"
    #: Overload soak (PROTOCOL.md §12): each schedule drives a
    #: flash-crowd workload through admission control + backpressure +
    #: brownout and audits the overload invariants (no in-chain drop,
    #: queues within bounds, shed conservation, goodput floor).
    overload: Optional[OverloadSpec] = None


@dataclass
class ScheduleResult:
    """Outcome of one randomized schedule."""

    index: int
    seed: int
    chain_length: int
    f: int
    faults: List[Tuple[float, str]] = field(default_factory=list)
    violations: List[InvariantViolation] = field(default_factory=list)
    released: int = 0
    failures_detected: int = 0
    recoveries: int = 0
    degraded: bool = False
    #: Structured recovery timeline (event dicts), when telemetry ran.
    timeline: List[dict] = field(default_factory=list)
    #: Impaired schedules only (PROTOCOL.md §8): offered load, per-hop
    #: retransmissions, and the exact egress pid order for determinism
    #: regression (two runs of one seed must agree bit-for-bit).
    sent: int = 0
    retransmissions: int = 0
    egress_pids: Optional[List[int]] = None
    #: Control-plane schedules only (PROTOCOL.md §9): elections won
    #: across the run and stale commands the epoch gate rejected.
    elections: int = 0
    fenced_commands: int = 0
    #: Reconfig schedules only (PROTOCOL.md §11).
    reconfigs_committed: int = 0
    reconfigs_aborted: int = 0
    #: Overload schedules only (PROTOCOL.md §12): admission ledger,
    #: end-to-end goodput, and the brownout transition count.
    offered: int = 0
    admitted: int = 0
    shed: int = 0
    goodput_pps: float = 0.0
    brownout_transitions: int = 0
    #: Path of the flight dump written for this schedule (flight soaks
    #: that tripped an invariant only).
    flight_dump: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class SoakResult:
    """Aggregate outcome of a soak run."""

    config: SoakConfig
    schedules: List[ScheduleResult] = field(default_factory=list)
    #: Metric registry merged across schedules (telemetry runs only).
    registry: Optional[MetricRegistry] = None

    @property
    def violations(self) -> List[InvariantViolation]:
        return [v for s in self.schedules for v in s.violations]

    @property
    def faults_injected(self) -> int:
        return sum(len(s.faults) for s in self.schedules)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.schedules)

    def summary(self) -> str:
        lines = [
            f"chaos soak: {len(self.schedules)} schedules, "
            f"{self.faults_injected} faults injected, "
            f"{sum(s.failures_detected for s in self.schedules)} failures "
            f"detected, {sum(s.recoveries for s in self.schedules)} "
            f"recoveries, {len(self.violations)} invariant violations",
        ]
        reconfigs = sum(s.reconfigs_committed for s in self.schedules)
        if reconfigs or any(s.reconfigs_aborted for s in self.schedules):
            lines.append(
                f"  reconfigurations: {reconfigs} committed, "
                f"{sum(s.reconfigs_aborted for s in self.schedules)} "
                f"aborted")
        shed = sum(s.shed for s in self.schedules)
        if shed or any(s.offered for s in self.schedules):
            lines.append(
                f"  overload: {sum(s.offered for s in self.schedules)} "
                f"offered, {sum(s.admitted for s in self.schedules)} "
                f"admitted, {shed} shed at ingress, "
                f"{sum(s.brownout_transitions for s in self.schedules)} "
                f"brownout transitions")
        elections = sum(s.elections for s in self.schedules)
        if elections:
            lines.append(
                f"  control plane: {elections} elections, "
                f"{sum(s.fenced_commands for s in self.schedules)} "
                f"stale commands fenced")
        for schedule in self.schedules:
            if schedule.ok:
                continue
            lines.append(
                f"  FAIL schedule {schedule.index} "
                f"(seed={schedule.seed}, Ch-{schedule.chain_length}, "
                f"f={schedule.f}):")
            for violation in schedule.violations:
                lines.append(f"    {violation}")
            for when, what in schedule.faults:
                lines.append(f"    fault @ {when * 1e3:.2f}ms: {what}")
        return "\n".join(lines)


def run_schedule(seed: int, chain_length: int, f: int,
                 max_faults: int = 3, duration_s: float = 60e-3,
                 rate_pps: float = 2e4, heartbeat_interval_s: float = 1e-3,
                 mean_fault_interval_s: float = 8e-3,
                 index: int = 0,
                 telemetry: Optional[Telemetry] = None) -> ScheduleResult:
    """One randomized fault schedule on a fresh Ch-``chain_length`` chain."""
    sim = Simulator()
    oracle = ShadowOracle()
    chain = FTCChain(sim, ch_n(chain_length, n_threads=2), f=f,
                     deliver=oracle, costs=SOAK_COSTS, n_threads=2, seed=seed,
                     telemetry=telemetry)
    chain.start()
    orchestrator = Orchestrator(sim, chain,
                                heartbeat_interval_s=heartbeat_interval_s)
    orchestrator.start()
    auditor = InvariantAuditor(
        chain, oracle=oracle, orchestrator=orchestrator,
        context={"seed": seed, "schedule": index})
    monkey = ChaosMonkey(chain, orchestrator,
                         mean_interval_s=mean_fault_interval_s,
                         max_faults=max_faults,
                         start_after_s=duration_s * 0.1)
    monkey.start()
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=rate_pps,
                                 flows=balanced_flows(8, 2))

    def periodic_audit():
        auditor.audit()
        if sim.now + AUDIT_INTERVAL_S < duration_s:
            sim.schedule_callback(AUDIT_INTERVAL_S, periodic_audit)

    sim.schedule_callback(AUDIT_INTERVAL_S, periodic_audit)
    sim.run(until=duration_s)
    generator.stop()
    monkey.stop()
    # Let in-flight recovery/commits drain, then audit one last time.
    sim.run(until=duration_s + 20 * heartbeat_interval_s)
    auditor.audit()
    orchestrator.stop()

    return ScheduleResult(
        index=index, seed=seed, chain_length=chain_length, f=f,
        faults=list(monkey.injected), violations=list(auditor.violations),
        released=oracle.released,
        failures_detected=len(orchestrator.history),
        recoveries=sum(1 for e in orchestrator.history if e.recovered),
        degraded=chain.degraded,
        timeline=([] if telemetry is None
                  else telemetry.timeline.as_dicts()))


def run_impaired_schedule(seed: int, chain_length: int = 2, f: int = 1,
                          drop_rate: float = 0.05, dup_rate: float = 0.02,
                          reorder_rate: float = 0.02,
                          corrupt_rate: float = 0.01,
                          duration_s: float = 60e-3, rate_pps: float = 2e4,
                          heartbeat_interval_s: float = 1e-3,
                          index: int = 0,
                          telemetry: Optional[Telemetry] = None
                          ) -> ScheduleResult:
    """One data-plane adversity schedule (PROTOCOL.md §8).

    A fresh chain with reliable hop channels runs under a scripted
    impairment window covering the middle 80% of the schedule: chain
    links drop/duplicate/reorder/corrupt packets while the end-to-end
    contract is audited -- exactly-once per-flow-ordered egress, zero
    loss after drain, and *no failover* (a lossy link must read as a
    lossy link, not as a dead replica).
    """
    sim = Simulator()
    oracle = ShadowOracle(track_order=True)
    chain = FTCChain(sim, ch_n(chain_length, n_threads=2), f=f,
                     deliver=oracle, costs=SOAK_COSTS, n_threads=2, seed=seed,
                     telemetry=telemetry, reliable_links=True)
    chain.start()
    orchestrator = Orchestrator(sim, chain,
                                heartbeat_interval_s=heartbeat_interval_s,
                                corroborate_suspects=True)
    orchestrator.start()
    auditor = InvariantAuditor(
        chain, oracle=oracle, orchestrator=orchestrator,
        context={"seed": seed, "schedule": index})
    plan = FaultPlan().impair_data(
        at_s=duration_s * 0.1, drop_rate=drop_rate, dup_rate=dup_rate,
        reorder_rate=reorder_rate, corrupt_rate=corrupt_rate,
        duration_s=duration_s * 0.8)
    injector = FaultInjector(chain, orchestrator, plan, seed=seed)
    injector.start()
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=rate_pps,
                                 flows=balanced_flows(8, 2))

    def periodic_audit():
        auditor.audit()
        if sim.now + AUDIT_INTERVAL_S < duration_s:
            sim.schedule_callback(AUDIT_INTERVAL_S, periodic_audit)

    sim.schedule_callback(AUDIT_INTERVAL_S, periodic_audit)
    sim.run(until=duration_s)
    generator.stop()
    # Retransmission tails need more drain runway than clean schedules
    # (RTO backoff caps at 2ms); the impairment window already closed
    # at 0.9 * duration, so by here every loss is recoverable.
    sim.run(until=duration_s + 40 * heartbeat_interval_s)
    auditor.audit(quiescent=True)
    orchestrator.stop()

    violations = list(auditor.violations)
    if oracle.released != generator.sent:
        violations.append(InvariantViolation(
            invariant="egress-loss",
            detail=f"released {oracle.released} != sent {generator.sent}",
            at_s=sim.now))
    if oracle.out_of_order:
        violations.append(InvariantViolation(
            invariant="egress-order",
            detail=f"{oracle.out_of_order} per-flow order inversions",
            at_s=sim.now))
    if orchestrator.history:
        violations.append(InvariantViolation(
            invariant="spurious-failover",
            detail=f"{len(orchestrator.history)} failovers under a "
                   f"lossy-but-alive data plane",
            at_s=sim.now))
    stats = chain.channel_stats()
    return ScheduleResult(
        index=index, seed=seed, chain_length=chain_length, f=f,
        faults=list(injector.injected), violations=violations,
        released=oracle.released,
        failures_detected=len(orchestrator.history),
        recoveries=sum(1 for e in orchestrator.history if e.recovered),
        degraded=chain.degraded,
        timeline=([] if telemetry is None
                  else telemetry.timeline.as_dicts()),
        sent=generator.sent,
        retransmissions=stats.get("retransmissions", 0),
        egress_pids=list(oracle.order))


#: Election timing for control-plane soaks: tight enough that a leader
#: crash fails over well inside a schedule, loose enough that renewal
#: rounds (bounded by the election retry budget) never starve a
#: healthy leader's lease.
CTRLPLANE_ELECTION = ElectionConfig(lease_s=6e-3, renew_every_s=2e-3,
                                    candidacy_base_s=2e-3)


def run_ctrlplane_schedule(seed: int, chain_length: int = 3, f: int = 1,
                           orchestrators: int = 3, max_faults: int = 4,
                           duration_s: float = 80e-3, rate_pps: float = 2e4,
                           heartbeat_interval_s: float = 1e-3,
                           mean_fault_interval_s: float = 10e-3,
                           orch_faults: bool = True,
                           index: int = 0,
                           telemetry: Optional[Telemetry] = None
                           ) -> ScheduleResult:
    """One control-plane chaos schedule (PROTOCOL.md §9).

    A replicated orchestrator ensemble monitors a fresh chain while the
    monkey mixes chain crashes with ensemble-member crashes, one-member
    partitions, and leader freezes (stale resumes).  On top of the §4/§5
    data-plane invariants the auditor proves election safety -- at most
    one valid lease, one leader per epoch, no double recovery -- and the
    schedule itself checks that every chain failure was eventually
    failed over despite the control-plane churn.
    """
    sim = Simulator()
    oracle = ShadowOracle()
    chain = FTCChain(sim, ch_n(chain_length, n_threads=2), f=f,
                     deliver=oracle, costs=SOAK_COSTS, n_threads=2, seed=seed,
                     telemetry=telemetry)
    chain.start()
    ensemble = OrchestratorEnsemble(
        sim, chain, n=orchestrators, election=CTRLPLANE_ELECTION,
        heartbeat_interval_s=heartbeat_interval_s)
    ensemble.start()
    auditor = InvariantAuditor(
        chain, oracle=oracle, orchestrator=ensemble,
        context={"seed": seed, "schedule": index})
    monkey = ChaosMonkey(chain, ensemble, ensemble=ensemble,
                         mean_interval_s=mean_fault_interval_s,
                         max_faults=max_faults,
                         start_after_s=duration_s * 0.1,
                         kind_weights=(CTRLPLANE_KIND_WEIGHTS if orch_faults
                                       else None))
    monkey.start()
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=rate_pps,
                                 flows=balanced_flows(8, 2))

    def periodic_audit():
        auditor.audit()
        if sim.now + AUDIT_INTERVAL_S < duration_s:
            sim.schedule_callback(AUDIT_INTERVAL_S, periodic_audit)

    sim.schedule_callback(AUDIT_INTERVAL_S, periodic_audit)
    sim.run(until=duration_s)
    generator.stop()
    monkey.stop()
    # Heal any open cut, then drain: paused members resume (and get
    # fenced), crashed members restart, a leader re-elects, and any
    # in-flight recovery finishes -- the drain must outlast a full
    # lease + candidacy + recovery cycle.
    chain.net.heal()
    chain.net.clear_impairment()
    drain = max(40 * heartbeat_interval_s,
                CTRLPLANE_ELECTION.lease_s * 5 + 20e-3)
    sim.run(until=duration_s + drain)
    auditor.audit(quiescent=True)
    violations = list(auditor.violations)
    failed_now = [p for p in range(chain.n_positions)
                  if chain.server_at(p).failed]
    if failed_now and not chain.degraded and ensemble.has_quorum:
        violations.append(InvariantViolation(
            invariant="missed-failover",
            detail=f"positions {failed_now} still failed at quiescence "
                   f"with a live ensemble quorum",
            at_s=sim.now))
    ensemble.stop()

    return ScheduleResult(
        index=index, seed=seed, chain_length=chain_length, f=f,
        faults=list(monkey.injected), violations=violations,
        released=oracle.released,
        failures_detected=len(ensemble.history),
        recoveries=sum(1 for e in ensemble.history if e.recovered),
        degraded=chain.degraded,
        timeline=([] if telemetry is None
                  else telemetry.timeline.as_dicts()),
        elections=len(ensemble.election_log),
        fenced_commands=ensemble.gate.fenced_commands)


def run_reconfig_schedule(seed: int, chain_length: int = 3, f: int = 1,
                          drop_rate: float = 0.02, dup_rate: float = 0.01,
                          reorder_rate: float = 0.01,
                          corrupt_rate: float = 0.005,
                          duration_s: float = 80e-3, rate_pps: float = 2e4,
                          heartbeat_interval_s: float = 1e-3,
                          crashes: bool = False, orchestrators: int = 1,
                          index: int = 0,
                          telemetry: Optional[Telemetry] = None
                          ) -> ScheduleResult:
    """One live-reconfiguration schedule (PROTOCOL.md §11).

    A fresh chain with reliable hop channels runs under a data-plane
    impairment window while a scripted sequence of reconfigurations
    fires: a classifier update, a vertical rescale, an instance
    migration, a middlebox insert, and its removal.  The end-to-end
    contract is audited throughout: every §4/§5 invariant, exactly-once
    per-flow-ordered egress, per-flow config-version monotonicity (a
    flow never sees an older config after a newer one), zero loss, and
    no spurious failover -- a drain + hold must read as a brief delay,
    never as a dead replica.

    ``crashes=True`` arms crash-during-reconfig faults instead: the
    zero-loss and no-failover assertions are waived (a crash loses
    in-flight packets by definition) but every invariant must still
    hold and every confirmed failure must be failed over.
    ``orchestrators > 1`` drives the operations through a replicated
    ensemble and kills the leader mid-switch -- the successor must
    resume or close the journaled operation, still without loss.
    """
    from ..core.reconfig import ClassifierRule, ClassifierSet, ReconfigOp
    from ..middlebox.monitor import Monitor

    sim = Simulator()
    cfg_last = {}
    cfg_inversions = [0]

    def check_cfg(packet):
        # Per-flow config-version monotonicity at egress: once a flow
        # egresses a packet stamped with config v, no packet of that
        # flow stamped with an older config may follow.
        cfg = packet.meta.get("cfg", 0)
        last = cfg_last.get(packet.flow, 0)
        if cfg < last:
            cfg_inversions[0] += 1
        else:
            cfg_last[packet.flow] = cfg

    oracle = ShadowOracle(inner=check_cfg, track_order=True)
    chain = FTCChain(sim, ch_n(chain_length, n_threads=2), f=f,
                     deliver=oracle, costs=SOAK_COSTS, n_threads=2, seed=seed,
                     telemetry=telemetry, reliable_links=True)
    chain.start()
    if orchestrators > 1:
        target = OrchestratorEnsemble(
            sim, chain, n=orchestrators, election=CTRLPLANE_ELECTION,
            heartbeat_interval_s=heartbeat_interval_s,
            corroborate_suspects=True)
        orchestrator = target
        injector_orch = target
    else:
        orchestrator = Orchestrator(sim, chain,
                                    heartbeat_interval_s=heartbeat_interval_s,
                                    corroborate_suspects=True)
        target = orchestrator
        injector_orch = orchestrator
    target.start()
    auditor = InvariantAuditor(
        chain, oracle=oracle, orchestrator=orchestrator,
        context={"seed": seed, "schedule": index})
    plan = FaultPlan().impair_data(
        at_s=duration_s * 0.1, drop_rate=drop_rate, dup_rate=dup_rate,
        reorder_rate=reorder_rate, corrupt_rate=corrupt_rate,
        duration_s=duration_s * 0.7)
    if crashes:
        plan.crash_during_reconfig(phase="draining", at_s=0.0)
    if orchestrators > 1:
        plan.leader_failover_mid_switch(at_s=0.0)
    injector = FaultInjector(chain, injector_orch, plan, seed=seed,
                             ensemble=(target if orchestrators > 1 else None))
    injector.start()
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=rate_pps,
                                 flows=balanced_flows(8, 2))

    # The scripted operation sequence, deterministic in the seed.
    rng = chain.streams.stream("reconfig-soak")
    rescale_pos = rng.randrange(chain.n_positions)
    migrate_pos = rng.randrange(chain.n_positions)
    ops = [
        (0.20, ReconfigOp(kind="classifier", classifier=ClassifierSet(
            version=1, rules=(ClassifierRule(action="allow"),)))),
        (0.34, ReconfigOp(kind="rescale", position=rescale_pos,
                          n_threads=3)),
        (0.48, ReconfigOp(kind="migrate", position=migrate_pos)),
        (0.60, ReconfigOp(kind="insert", index=1,
                          middlebox=Monitor(name="soak-probe"))),
        (0.74, ReconfigOp(kind="remove", middlebox_name="soak-probe")),
    ]
    requested = len(ops)

    def submit(op):
        # A mid-failover ensemble may briefly have no acting leader;
        # re-submit until one exists (bounded by the schedule's end).
        if sim.now > duration_s:
            return
        try:
            target.request_reconfig(op)
        except Exception:
            sim.schedule_callback(2e-3, lambda op=op: submit(op))

    for fraction, op in ops:
        sim.schedule_callback(duration_s * fraction,
                              lambda op=op: submit(op))

    def periodic_audit():
        auditor.audit()
        if sim.now + AUDIT_INTERVAL_S < duration_s:
            sim.schedule_callback(AUDIT_INTERVAL_S, periodic_audit)

    sim.schedule_callback(AUDIT_INTERVAL_S, periodic_audit)
    sim.run(until=duration_s)
    generator.stop()
    chain.net.heal()
    chain.net.clear_impairment()
    # Drain runway: retransmission tails, held packets releasing at
    # line rate, any resumed reconfiguration after a leader failover.
    drain = max(60 * heartbeat_interval_s,
                CTRLPLANE_ELECTION.lease_s * 5 + 40e-3)
    sim.run(until=duration_s + drain)
    auditor.audit(quiescent=not crashes)
    history = list(target.reconfig_history)
    committed = sum(1 for r in history if r.committed)
    aborted = sum(1 for r in history if r.aborted)

    violations = list(auditor.violations)
    if oracle.out_of_order:
        violations.append(InvariantViolation(
            invariant="egress-order",
            detail=f"{oracle.out_of_order} per-flow order inversions",
            at_s=sim.now))
    if cfg_inversions[0]:
        violations.append(InvariantViolation(
            invariant="cfg-monotonic",
            detail=f"{cfg_inversions[0]} per-flow config-version "
                   f"inversions at egress",
            at_s=sim.now))
    failures = (target.history if orchestrators > 1
                else orchestrator.history)
    if not crashes:
        if oracle.released != generator.sent:
            violations.append(InvariantViolation(
                invariant="egress-loss",
                detail=f"released {oracle.released} != sent "
                       f"{generator.sent} across {committed} committed "
                       f"reconfigurations",
                at_s=sim.now))
        chain_failovers = [e for e in failures]
        if orchestrators == 1 and chain_failovers:
            violations.append(InvariantViolation(
                invariant="spurious-failover",
                detail=f"{len(chain_failovers)} failovers during pure "
                       f"reconfiguration under a lossy-but-alive data plane",
                at_s=sim.now))
        # Every submitted operation must reach a terminal state.  A
        # leader killed mid-switch may leave its successor unable to
        # reconstruct the operation (e.g. an insert's middlebox object
        # cannot ride in the journal); the successor then formally
        # aborts it -- terminal, not stuck.
        if committed + aborted < requested:
            violations.append(InvariantViolation(
                invariant="reconfig-stuck",
                detail=f"only {committed}/{requested} reconfigurations "
                       f"reached a terminal state ({aborted} aborted)",
                at_s=sim.now))
    else:
        failed_now = [p for p in range(chain.n_positions)
                      if chain.server_at(p).failed]
        quorum_ok = (target.has_quorum if orchestrators > 1 else True)
        if failed_now and not chain.degraded and quorum_ok:
            violations.append(InvariantViolation(
                invariant="missed-failover",
                detail=f"positions {failed_now} still failed at "
                       f"quiescence",
                at_s=sim.now))
    target.stop()

    stats = chain.channel_stats()
    return ScheduleResult(
        index=index, seed=seed, chain_length=chain_length, f=f,
        faults=list(injector.injected), violations=violations,
        released=oracle.released,
        failures_detected=len(failures),
        recoveries=sum(1 for e in failures if e.recovered),
        degraded=chain.degraded,
        timeline=([] if telemetry is None
                  else telemetry.timeline.as_dicts()),
        sent=generator.sent,
        retransmissions=stats.get("retransmissions", 0),
        egress_pids=list(oracle.order),
        elections=(len(target.election_log) if orchestrators > 1 else 0),
        fenced_commands=(target.gate.fenced_commands
                         if orchestrators > 1 else 0),
        reconfigs_committed=committed,
        reconfigs_aborted=aborted)


def run_overload_schedule(seed: int, chain_length: int = 3, f: int = 1,
                          spec: Optional[OverloadSpec] = None,
                          duration_s: float = 120e-3,
                          heartbeat_interval_s: float = 1e-3,
                          index: int = 0,
                          telemetry: Optional[Telemetry] = None
                          ) -> ScheduleResult:
    """One flash-crowd overload schedule (PROTOCOL.md §12).

    A fresh chain runs with the full overload stack wired: a
    :class:`WorkloadGenerator` drives heavy-tailed prioritized traffic
    whose scripted flash crowd exceeds sustainable capacity by
    ``spec.peak_factor`` (default 4.8x); an :class:`AdmissionControl`
    gates the ingress against a :class:`BackpressureBus` spanning every
    bounded queue; an SLO watchdog on windowed p99 latency drives a
    :class:`BrownoutController` that throttles admission, coarsens
    sampling, and batches feedback until pressure clears.

    The auditor proves the §12 invariants throughout (zero in-chain
    drops, queues within bounds, shed conservation and ordering,
    brownout journal 1:1) on top of §4/§5, and the schedule itself
    checks end-to-end outcomes: goodput stays above the configured
    floor, every admitted packet egresses exactly once (no-crash
    variant), and brownout has fully exited at quiescence.

    ``spec.crash=True`` crashes a deterministic position mid-flash --
    overload handling and failure recovery must coexist (the admitted
    == released assertion is waived; invariants are not).
    ``spec.orchestrators > 1`` replaces the orchestrator with a
    leader-elected ensemble and journals every brownout transition
    through its write-ahead quorum journal.
    """
    from ..metrics.stats import percentile

    spec = spec or OverloadSpec()
    sim = Simulator()
    egress = EgressRecorder(sim)
    oracle = ShadowOracle(inner=egress)
    bus = BackpressureBus()
    admission = AdmissionControl(
        sim, rate_pps=spec.budget_frac * spec.sustainable_pps,
        n_classes=3, bus=bus, telemetry=telemetry)
    chain = FTCChain(sim, ch_n(chain_length, n_threads=2), f=f,
                     deliver=oracle, costs=OVERLOAD_COSTS, n_threads=2,
                     seed=seed, telemetry=telemetry, admission=admission)
    chain.start()
    if spec.orchestrators > 1:
        orchestrator = OrchestratorEnsemble(
            sim, chain, n=spec.orchestrators, election=CTRLPLANE_ELECTION,
            heartbeat_interval_s=heartbeat_interval_s)
    else:
        orchestrator = Orchestrator(
            sim, chain, heartbeat_interval_s=heartbeat_interval_s)
    orchestrator.start()

    flash = FlashCrowd(at_s=duration_s * spec.flash_start_frac,
                       duration_s=duration_s * spec.flash_duration_frac,
                       multiplier=spec.flash_factor)
    workload = WorkloadGenerator(
        sim, chain.ingress,
        WorkloadSpec(base_pps=spec.base_frac * spec.sustainable_pps,
                     flashes=(flash,), n_flows=32, n_classes=3),
        n_queues=2, streams=RandomStreams(seed))

    # Windowed p99: brownout must see pressure *clear*, so the probe
    # differences the egress sampler between watchdog ticks instead of
    # reporting the cumulative distribution (which a flash would
    # dominate forever).
    probes = run_probes(egress, chain=chain, orchestrator=orchestrator)
    window_state = {"n": 0}

    def p99_window_us():
        samples = egress.latency.samples
        start = window_state["n"]
        window_state["n"] = len(samples)
        if len(samples) <= start:
            return None
        return percentile(samples[start:], 99) * 1e6

    probes["p99_latency_us"] = p99_window_us
    watchdog = SLOWatchdog(
        sim, [SLOObjective("p99_latency_us", "<=", spec.p99_limit_us)],
        probes=probes, telemetry=telemetry)
    watchdog.start()

    journal = None
    if spec.orchestrators > 1:
        def journal(transition):
            leader = orchestrator.leader
            if leader is None:
                return

            def drive():
                try:
                    yield from leader.journal_step(
                        f"brownout-{transition.kind}", [],
                        transition.describe())
                except Exception:
                    pass  # fenced mid-write: the flight ring still has it
            sim.process(drive(), name="brownout-journal")

    brownout = BrownoutController(sim, watchdog, admission=admission,
                                  buffer=chain.buffer, journal=journal,
                                  telemetry=telemetry)
    auditor = InvariantAuditor(
        chain, oracle=oracle, orchestrator=orchestrator, brownout=brownout,
        context={"seed": seed, "schedule": index,
                 "overload": spec.describe()})

    injector = None
    if spec.crash:
        rng = chain.streams.stream("overload-soak")
        crash_position = rng.randrange(chain.n_positions)
        plan = FaultPlan().crash(
            position=crash_position,
            at_s=flash.at_s + flash.duration_s / 2)
        injector = FaultInjector(chain, orchestrator, plan, seed=seed)
        injector.start()

    def periodic_audit():
        auditor.audit()
        if sim.now + AUDIT_INTERVAL_S < duration_s:
            sim.schedule_callback(AUDIT_INTERVAL_S, periodic_audit)

    sim.schedule_callback(AUDIT_INTERVAL_S, periodic_audit)
    sim.run(until=duration_s)
    workload.stop()
    # Drain runway: held packets release, queues empty, the windowed
    # p99 probe goes quiet, and brownout walks its de-escalation ladder
    # (4 clean ticks per level at the coarsened sampling interval).
    sim.run(until=duration_s + 160e-3)
    auditor.audit(quiescent=True)
    watchdog.stop()
    orchestrator.stop()

    violations = list(auditor.violations)
    goodput = oracle.released / duration_s
    goodput_floor = spec.goodput_floor_frac * spec.sustainable_pps
    if goodput < goodput_floor:
        violations.append(InvariantViolation(
            invariant="goodput-floor",
            detail=f"goodput {goodput:.0f}pps < floor {goodput_floor:.0f}pps "
                   f"under {spec.peak_factor:g}x offered load",
            at_s=sim.now))
    if oracle.duplicate_releases:
        violations.append(InvariantViolation(
            invariant="egress-duplicate",
            detail=f"{oracle.duplicate_releases} duplicate releases",
            at_s=sim.now))
    if not spec.crash and oracle.released != admission.admitted:
        violations.append(InvariantViolation(
            invariant="overload-loss",
            detail=f"released {oracle.released} != admitted "
                   f"{admission.admitted} (shed {admission.shed} at "
                   f"ingress is the only legal loss)",
            at_s=sim.now))

    history = orchestrator.history
    return ScheduleResult(
        index=index, seed=seed, chain_length=chain_length, f=f,
        faults=list(injector.injected) if injector is not None else [],
        violations=violations,
        released=oracle.released,
        failures_detected=len(history),
        recoveries=sum(1 for e in history if e.recovered),
        degraded=chain.degraded,
        timeline=([] if telemetry is None
                  else telemetry.timeline.as_dicts()),
        sent=workload.sent,
        offered=admission.offered,
        admitted=admission.admitted,
        shed=admission.shed,
        goodput_pps=goodput,
        brownout_transitions=len(brownout.transitions),
        elections=(len(orchestrator.election_log)
                   if spec.orchestrators > 1 else 0),
        fenced_commands=(orchestrator.gate.fenced_commands
                         if spec.orchestrators > 1 else 0))


def run_soak(config: Optional[SoakConfig] = None,
             progress=None) -> SoakResult:
    """Sweep ``config.schedules`` randomized schedules (round-robin over
    the (chain length, f) grid), each seeded from ``config.seed``."""
    config = config or SoakConfig()
    result = SoakResult(config=config)
    if config.telemetry:
        result.registry = MetricRegistry()
    grid = [(n, f) for n in config.chain_lengths for f in config.f_values]
    if config.flight:
        os.makedirs(config.flight_dump_dir, exist_ok=True)
    for index in range(config.schedules):
        chain_length, f = grid[index % len(grid)]
        seed = config.seed * 10_000 + index
        flight = None
        if config.flight:
            flight = FlightRecorder(autodump_path=os.path.join(
                config.flight_dump_dir, f"flight-{index}.json"))
            flight.set_context(seed=seed, schedule=index,
                               chain_length=chain_length, f=f)
        telemetry = (Telemetry(flight=flight)
                     if config.telemetry or config.flight else None)
        if config.overload is not None:
            schedule = run_overload_schedule(
                seed=seed, chain_length=chain_length, f=f,
                spec=config.overload,
                duration_s=max(config.duration_s, 120e-3),
                heartbeat_interval_s=config.heartbeat_interval_s,
                index=index, telemetry=telemetry)
        elif config.reconfig:
            schedule = run_reconfig_schedule(
                seed=seed, chain_length=chain_length, f=f,
                duration_s=max(config.duration_s, 80e-3),
                rate_pps=config.rate_pps,
                heartbeat_interval_s=config.heartbeat_interval_s,
                crashes=config.reconfig_crashes,
                orchestrators=config.orchestrators,
                index=index, telemetry=telemetry)
        elif config.impair_data is not None:
            drop, dup, reorder, corrupt = config.impair_data
            schedule = run_impaired_schedule(
                seed=seed, chain_length=chain_length, f=f,
                drop_rate=drop, dup_rate=dup, reorder_rate=reorder,
                corrupt_rate=corrupt,
                duration_s=config.duration_s, rate_pps=config.rate_pps,
                heartbeat_interval_s=config.heartbeat_interval_s,
                index=index, telemetry=telemetry)
        elif config.orchestrators > 1:
            schedule = run_ctrlplane_schedule(
                seed=seed, chain_length=chain_length, f=f,
                orchestrators=config.orchestrators,
                max_faults=config.faults_per_schedule,
                duration_s=config.duration_s, rate_pps=config.rate_pps,
                heartbeat_interval_s=config.heartbeat_interval_s,
                mean_fault_interval_s=config.mean_fault_interval_s,
                orch_faults=config.orch_faults,
                index=index, telemetry=telemetry)
        else:
            schedule = run_schedule(
                seed=seed, chain_length=chain_length, f=f,
                max_faults=config.faults_per_schedule,
                duration_s=config.duration_s, rate_pps=config.rate_pps,
                heartbeat_interval_s=config.heartbeat_interval_s,
                mean_fault_interval_s=config.mean_fault_interval_s,
                index=index, telemetry=telemetry)
        if telemetry is not None and result.registry is not None:
            result.registry.merge(telemetry.registry)
        if flight is not None and flight.trips:
            schedule.flight_dump = flight.autodump_path
        result.schedules.append(schedule)
        if progress is not None:
            progress(schedule)
    return result
