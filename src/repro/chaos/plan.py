"""Scripted fault schedules.

A :class:`FaultPlan` is a deterministic list of :class:`FaultSpec`
entries -- crash this position at that time, crash a position the
moment recovery reaches a given phase, impair the control plane for a
window.  :class:`FaultInjector` arms a plan against a running
chain/orchestrator pair; every injection is recorded with its firing
time so a failing soak schedule can be replayed exactly from its seed
(see PROTOCOL.md, "Failure model & chaos testing").

Scripted plans are the precision tool; for randomized soaking see
:class:`repro.chaos.monkey.ChaosMonkey`, which samples specs like
these from configurable distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.chain import FTCChain
from ..orchestration.orchestrator import Orchestrator

__all__ = ["FaultSpec", "FaultPlan", "FaultInjector", "FAULT_KINDS",
           "IMPAIRED_DELIVERY", "RECONFIG_FAULT_KINDS",
           "OVERLOAD_FAULT_KINDS"]

#: The data-plane adversity kind (PROTOCOL.md §8): chain links drop,
#: duplicate, reorder, and corrupt packets for a window.
IMPAIRED_DELIVERY = "impair-data"

#: Control-plane fault kinds (PROTOCOL.md §9): kill an ensemble
#: member, cut one off from everything else, or freeze the leader past
#: its lease so it wakes up stale.  All three need an
#: :class:`~repro.orchestration.ensemble.OrchestratorEnsemble`.
ORCH_FAULT_KINDS = ("orch-crash", "orch-partition", "stale-leader-resume")

#: Live-reconfiguration fault kinds (PROTOCOL.md §11): crash a chain
#: position the instant a reconfiguration reaches a phase, kill the
#: ensemble leader mid-switch, or fire a reconfiguration request while
#: a recovery is in flight.
RECONFIG_FAULT_KINDS = ("crash-during-reconfig", "leader-failover-mid-switch",
                        "reconfig-during-recovery")

#: Overload fault kinds (PROTOCOL.md §12): multiply the workload
#: generator's rate for a window, slow one middlebox's per-packet
#: cycle cost, or squeeze the egress buffer's held-set bound.
OVERLOAD_FAULT_KINDS = ("flash-crowd", "slow-middlebox", "queue-pressure")

#: Supported fault kinds.
FAULT_KINDS = ("crash", "crash-during-recovery", "impair-control",
               IMPAIRED_DELIVERY) + ORCH_FAULT_KINDS + RECONFIG_FAULT_KINDS \
              + OVERLOAD_FAULT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``kind="crash"``
        Fail-stop ``position`` at ``at_s`` (simulated seconds).  Several
        specs with the same ``at_s`` express a correlated multi-crash.
    ``kind="crash-during-recovery"``
        Arm a recovery-phase hook from ``at_s`` on: the first time a
        recovery run reaches ``phase`` (one of
        ``repro.core.RECOVERY_PHASES``), fail ``position``.  This is
        how a fetch source is killed mid-transfer.
    ``kind="impair-control"``
        From ``at_s``, drop/duplicate/delay control-plane messages for
        ``duration_s`` (see :meth:`repro.net.Network.impair`).
    ``kind="impair-data"`` (:data:`IMPAIRED_DELIVERY`)
        From ``at_s``, chain links drop/duplicate/reorder/corrupt data
        packets for ``duration_s``
        (see :meth:`repro.net.Network.impair_data`).
    ``kind="orch-crash"``
        Fail-stop ensemble ``member`` at ``at_s`` (the current leader
        when ``member`` is None); ``restart_after_s`` optionally brings
        it back as a follower.
    ``kind="orch-partition"``
        From ``at_s``, cut ensemble ``member`` (default: the leader)
        off from every other server for ``duration_s`` -- it keeps
        running but can reach neither its peers nor the chain.
    ``kind="stale-leader-resume"``
        At ``at_s``, freeze ``member`` (default: the leader) for
        ``duration_s``.  Freeze it past its lease and it wakes up still
        believing it leads -- the split-brain scenario epoch fencing
        must neutralize.
    ``kind="crash-during-reconfig"``
        Arm a reconfiguration-phase hook from ``at_s`` on: the first
        time a live reconfiguration (PROTOCOL.md §11) reaches ``phase``
        (one of ``repro.core.RECONFIG_PHASES``, default ``draining``),
        fail ``position`` (default: the operation's own position).
    ``kind="leader-failover-mid-switch"``
        Like ``crash-during-reconfig`` but kills the *ensemble leader*
        (needs an ensemble) when the reconfiguration reaches ``phase``
        (default ``switching``) -- the successor must resume or close
        the journaled operation.
    ``kind="reconfig-during-recovery"``
        Arm a recovery-phase hook from ``at_s`` on: when a recovery
        reaches ``phase`` (default ``fetching``), submit the
        reconfiguration described by ``operation`` (a
        :meth:`~repro.core.reconfig.ReconfigOp.describe` string) --
        the request must serialize behind the recovery, never corrupt
        it.
    ``kind="flash-crowd"``
        From ``at_s``, multiply the workload generator's offered load
        by ``factor`` for ``duration_s`` (needs a ``workload`` target
        on the injector).
    ``kind="slow-middlebox"``
        From ``at_s``, multiply middlebox ``position``'s per-packet
        processing cycles by ``factor`` for ``duration_s`` -- a hot
        middlebox becoming the bottleneck, the classic overload cause.
    ``kind="queue-pressure"``
        From ``at_s``, divide the egress buffer's held-set bound by
        ``factor`` for ``duration_s``, forcing backpressure to engage
        far below the normal watermark.
    """

    kind: str
    at_s: float = 0.0
    position: Optional[int] = None
    phase: Optional[str] = None
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    extra_delay_s: float = 0.0
    delay_jitter_s: float = 0.0
    duration_s: Optional[float] = None
    member: Optional[int] = None
    restart_after_s: Optional[float] = None
    operation: Optional[str] = None
    factor: float = 4.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in OVERLOAD_FAULT_KINDS:
            if self.duration_s is None:
                raise ValueError(f"{self.kind} faults need a duration_s")
            if self.factor <= 1.0:
                raise ValueError(f"{self.kind} factor must be > 1")
        if self.kind == "crash" and self.position is None:
            raise ValueError("crash faults need a position")
        if self.kind == "crash-during-recovery" and self.phase is None:
            raise ValueError("crash-during-recovery faults need a phase")
        if self.kind == "reconfig-during-recovery" and self.operation is None:
            raise ValueError("reconfig-during-recovery faults need an "
                             "operation descriptor")
        if (self.kind in ("orch-partition", "stale-leader-resume")
                and self.duration_s is None):
            raise ValueError(f"{self.kind} faults need a duration_s")
        if self.kind in ("impair-control", IMPAIRED_DELIVERY):
            for name in ("drop_rate", "dup_rate", "reorder_rate",
                         "corrupt_rate"):
                value = getattr(self, name)
                if not 0.0 <= value <= 1.0:
                    raise ValueError(f"{name} must be a probability in "
                                     f"[0, 1], got {value!r}")

    def describe(self) -> str:
        if self.kind == "crash":
            return f"crash p{self.position} @ {self.at_s * 1e3:.2f}ms"
        if self.kind in ORCH_FAULT_KINDS:
            who = "leader" if self.member is None else f"m{self.member}"
            window = ("" if self.duration_s is None
                      else f" for {self.duration_s * 1e3:.2f}ms")
            return f"{self.kind} {who}{window} @ {self.at_s * 1e3:.2f}ms"
        if self.kind == "crash-during-recovery":
            return (f"crash p{self.position} at recovery phase "
                    f"{self.phase!r} (armed @ {self.at_s * 1e3:.2f}ms)")
        if self.kind == "crash-during-reconfig":
            who = ("the op's position" if self.position is None
                   else f"p{self.position}")
            return (f"crash {who} at reconfig phase "
                    f"{(self.phase or 'draining')!r} "
                    f"(armed @ {self.at_s * 1e3:.2f}ms)")
        if self.kind == "leader-failover-mid-switch":
            return (f"crash the leader at reconfig phase "
                    f"{(self.phase or 'switching')!r} "
                    f"(armed @ {self.at_s * 1e3:.2f}ms)")
        if self.kind == "reconfig-during-recovery":
            return (f"request {self.operation!r} at recovery phase "
                    f"{(self.phase or 'fetching')!r} "
                    f"(armed @ {self.at_s * 1e3:.2f}ms)")
        if self.kind in OVERLOAD_FAULT_KINDS:
            where = "" if self.position is None else f" p{self.position}"
            return (f"{self.kind}{where} x{self.factor:g} for "
                    f"{self.duration_s * 1e3:.2f}ms "
                    f"@ {self.at_s * 1e3:.2f}ms")
        if self.kind == IMPAIRED_DELIVERY:
            return (f"impair data drop={self.drop_rate} dup={self.dup_rate} "
                    f"reorder={self.reorder_rate} "
                    f"corrupt={self.corrupt_rate} "
                    f"@ {self.at_s * 1e3:.2f}ms")
        return (f"impair control drop={self.drop_rate} dup={self.dup_rate} "
                f"delay={self.extra_delay_s * 1e3:.2f}ms "
                f"@ {self.at_s * 1e3:.2f}ms")


@dataclass
class FaultPlan:
    """An ordered, deterministic fault schedule."""

    faults: List[FaultSpec] = field(default_factory=list)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.faults.append(spec)
        return self

    def crash(self, position: int, at_s: float) -> "FaultPlan":
        return self.add(FaultSpec(kind="crash", at_s=at_s, position=position))

    def crash_during_recovery(self, position: int, phase: str,
                              at_s: float = 0.0) -> "FaultPlan":
        return self.add(FaultSpec(kind="crash-during-recovery", at_s=at_s,
                                  position=position, phase=phase))

    def impair_control(self, at_s: float, drop_rate: float = 0.0,
                       dup_rate: float = 0.0, extra_delay_s: float = 0.0,
                       delay_jitter_s: float = 0.0,
                       duration_s: Optional[float] = None) -> "FaultPlan":
        return self.add(FaultSpec(
            kind="impair-control", at_s=at_s, drop_rate=drop_rate,
            dup_rate=dup_rate, extra_delay_s=extra_delay_s,
            delay_jitter_s=delay_jitter_s, duration_s=duration_s))

    def impair_data(self, at_s: float, drop_rate: float = 0.0,
                    dup_rate: float = 0.0, reorder_rate: float = 0.0,
                    corrupt_rate: float = 0.0,
                    duration_s: Optional[float] = None) -> "FaultPlan":
        return self.add(FaultSpec(
            kind=IMPAIRED_DELIVERY, at_s=at_s, drop_rate=drop_rate,
            dup_rate=dup_rate, reorder_rate=reorder_rate,
            corrupt_rate=corrupt_rate, duration_s=duration_s))

    def orch_crash(self, at_s: float, member: Optional[int] = None,
                   restart_after_s: Optional[float] = None) -> "FaultPlan":
        return self.add(FaultSpec(kind="orch-crash", at_s=at_s,
                                  member=member,
                                  restart_after_s=restart_after_s))

    def orch_partition(self, at_s: float, duration_s: float,
                       member: Optional[int] = None) -> "FaultPlan":
        return self.add(FaultSpec(kind="orch-partition", at_s=at_s,
                                  member=member, duration_s=duration_s))

    def stale_leader_resume(self, at_s: float, duration_s: float,
                            member: Optional[int] = None) -> "FaultPlan":
        return self.add(FaultSpec(kind="stale-leader-resume", at_s=at_s,
                                  member=member, duration_s=duration_s))

    def crash_during_reconfig(self, phase: str = "draining",
                              position: Optional[int] = None,
                              at_s: float = 0.0) -> "FaultPlan":
        return self.add(FaultSpec(kind="crash-during-reconfig", at_s=at_s,
                                  position=position, phase=phase))

    def leader_failover_mid_switch(self, phase: str = "switching",
                                   at_s: float = 0.0) -> "FaultPlan":
        return self.add(FaultSpec(kind="leader-failover-mid-switch",
                                  at_s=at_s, phase=phase))

    def reconfig_during_recovery(self, operation: str,
                                 phase: str = "fetching",
                                 at_s: float = 0.0) -> "FaultPlan":
        return self.add(FaultSpec(kind="reconfig-during-recovery", at_s=at_s,
                                  operation=operation, phase=phase))

    def flash_crowd(self, at_s: float, duration_s: float,
                    factor: float = 4.0) -> "FaultPlan":
        return self.add(FaultSpec(kind="flash-crowd", at_s=at_s,
                                  duration_s=duration_s, factor=factor))

    def slow_middlebox(self, at_s: float, duration_s: float,
                       factor: float = 8.0,
                       position: Optional[int] = None) -> "FaultPlan":
        return self.add(FaultSpec(kind="slow-middlebox", at_s=at_s,
                                  duration_s=duration_s, factor=factor,
                                  position=position))

    def queue_pressure(self, at_s: float, duration_s: float,
                       factor: float = 16.0) -> "FaultPlan":
        return self.add(FaultSpec(kind="queue-pressure", at_s=at_s,
                                  duration_s=duration_s, factor=factor))

    def describe(self) -> List[str]:
        return [spec.describe() for spec in sorted(self.faults,
                                                   key=lambda s: s.at_s)]


class FaultInjector:
    """Arms a :class:`FaultPlan` against a chain + orchestrator."""

    def __init__(self, chain: FTCChain, orchestrator: Optional[Orchestrator],
                 plan: FaultPlan, seed: int = 0, ensemble=None,
                 workload=None):
        self.chain = chain
        self.orchestrator = orchestrator
        self.plan = plan
        self.seed = seed
        #: The :class:`~repro.orchestration.ensemble.OrchestratorEnsemble`
        #: the ``orch-*`` fault kinds act on.
        self.ensemble = ensemble
        #: The :class:`~repro.net.flowgen.WorkloadGenerator` the
        #: ``flash-crowd`` fault kind boosts.
        self.workload = workload
        #: (fire time, human-readable description) per executed fault.
        self.injected: List[Tuple[float, str]] = []
        self._armed_phase_specs: List[FaultSpec] = []
        self._armed_reconfig_specs: List[FaultSpec] = []
        self._armed_recovery_reconfigs: List[FaultSpec] = []

    def start(self) -> None:
        sim = self.chain.sim
        executors = {
            "crash": self._crash,
            "crash-during-recovery": self._arm_phase_spec,
            IMPAIRED_DELIVERY: self._impair_data,
            "impair-control": self._impair,
            "orch-crash": self._orch_crash,
            "orch-partition": self._orch_partition,
            "stale-leader-resume": self._stale_leader_resume,
            "crash-during-reconfig": self._arm_reconfig_spec,
            "leader-failover-mid-switch": self._arm_reconfig_spec,
            "reconfig-during-recovery": self._arm_recovery_reconfig,
            "flash-crowd": self._flash_crowd,
            "slow-middlebox": self._slow_middlebox,
            "queue-pressure": self._queue_pressure,
        }
        for spec in self.plan.faults:
            if (spec.kind in ORCH_FAULT_KINDS
                    or spec.kind == "leader-failover-mid-switch") \
                    and self.ensemble is None:
                raise ValueError(
                    f"{spec.kind} faults need an orchestrator ensemble")
            if spec.kind == "flash-crowd" and self.workload is None:
                raise ValueError(
                    "flash-crowd faults need a workload generator target")
            sim.schedule_callback(
                max(0.0, spec.at_s - sim.now),
                lambda spec=spec, run=executors[spec.kind]: run(spec))

    # -- executors --------------------------------------------------------------

    def _record(self, what: str) -> None:
        self.injected.append((self.chain.sim.now, what))

    def _crash(self, spec: FaultSpec) -> None:
        position = spec.position
        if self.chain.server_at(position).failed:
            return  # already down (e.g. a correlated crash beat us to it)
        self.chain.fail_position(position)
        self._record(f"crash p{position}")

    def _impair(self, spec: FaultSpec) -> None:
        self.chain.net.impair(
            drop_rate=spec.drop_rate, dup_rate=spec.dup_rate,
            extra_delay_s=spec.extra_delay_s,
            delay_jitter_s=spec.delay_jitter_s,
            duration_s=spec.duration_s, seed=self.seed)
        self._record(spec.describe())

    def _impair_data(self, spec: FaultSpec) -> None:
        self.chain.net.impair_data(
            drop_rate=spec.drop_rate, dup_rate=spec.dup_rate,
            reorder_rate=spec.reorder_rate, corrupt_rate=spec.corrupt_rate,
            duration_s=spec.duration_s, seed=self.seed)
        self._record(spec.describe())

    def _member_for(self, spec: FaultSpec):
        """The targeted ensemble member: explicit index or the leader."""
        if spec.member is not None:
            return self.ensemble.members[spec.member]
        return self.ensemble.leader

    def _orch_crash(self, spec: FaultSpec) -> None:
        member = self._member_for(spec)
        if member is None or member.crashed:
            return  # no current leader / already down: nothing to kill
        member.crash()
        self._record(f"orch-crash m{member.index}")
        if spec.restart_after_s is not None:
            self.chain.sim.schedule_callback(
                spec.restart_after_s, member.restart)

    def _orch_partition(self, spec: FaultSpec) -> None:
        member = self._member_for(spec)
        if member is None or member.crashed:
            return
        net = self.chain.net
        others = [name for name in net.servers
                  if name != member.server_name]
        token = net.partition([member.server_name], others)
        self.chain.sim.schedule_callback(
            spec.duration_s, lambda: net.heal(token))
        self._record(f"orch-partition m{member.index} for "
                     f"{spec.duration_s * 1e3:.2f}ms")

    def _stale_leader_resume(self, spec: FaultSpec) -> None:
        member = self._member_for(spec)
        if member is None or member.crashed or member.paused:
            return
        member.pause(spec.duration_s)
        self._record(f"pause m{member.index} for "
                     f"{spec.duration_s * 1e3:.2f}ms"
                     + (" (leader: stale resume ahead)"
                        if member.is_leader else ""))

    def _arm_phase_spec(self, spec: FaultSpec) -> None:
        if self.orchestrator is None:
            raise ValueError(
                "crash-during-recovery faults need an orchestrator "
                "(its recovery hooks carry the phase signal)")
        if not self._armed_phase_specs:
            self.orchestrator.recovery_hooks.append(self._on_phase)
        self._armed_phase_specs.append(spec)

    def _on_phase(self, phase: str, positions: List[int]) -> None:
        for spec in list(self._armed_phase_specs):
            if spec.phase != phase:
                continue
            target = spec.position
            if target is None or target in positions or \
                    self.chain.server_at(target).failed:
                continue
            self._armed_phase_specs.remove(spec)
            self.chain.fail_position(target)
            self._record(f"crash p{target} during recovery phase {phase!r} "
                         f"of {positions}")

    # -- reconfiguration fault kinds (PROTOCOL.md §11) ---------------------------

    def _arm_reconfig_spec(self, spec: FaultSpec) -> None:
        if self.orchestrator is None:
            raise ValueError(
                f"{spec.kind} faults need an orchestrator (its reconfig "
                "hooks carry the phase signal)")
        if not self._armed_reconfig_specs:
            self.orchestrator.reconfig_hooks.append(self._on_reconfig_phase)
        self._armed_reconfig_specs.append(spec)

    def _on_reconfig_phase(self, phase: str, positions) -> None:
        for spec in list(self._armed_reconfig_specs):
            want = spec.phase or ("switching"
                                  if spec.kind == "leader-failover-mid-switch"
                                  else "draining")
            if want != phase:
                continue
            self._armed_reconfig_specs.remove(spec)
            if spec.kind == "leader-failover-mid-switch":
                leader = self.ensemble.leader
                if leader is None or leader.crashed:
                    continue
                leader.crash()
                self._record(f"orch-crash m{leader.index} (leader) at "
                             f"reconfig phase {phase!r} of {list(positions)}")
            else:
                target = spec.position
                if target is None:
                    target = positions[0] if positions else 0
                if (target >= self.chain.n_positions
                        or self.chain.server_at(target).failed):
                    continue
                self.chain.fail_position(target)
                self._record(f"crash p{target} during reconfig phase "
                             f"{phase!r} of {list(positions)}")

    # -- overload fault kinds (PROTOCOL.md §12) ----------------------------------

    def _flash_crowd(self, spec: FaultSpec) -> None:
        workload = self.workload
        workload.boost *= spec.factor

        def subside():
            workload.boost /= spec.factor
            self._record(f"flash-crowd subsided (boost {workload.boost:g})")

        self.chain.sim.schedule_callback(spec.duration_s, subside)
        self._record(f"flash-crowd x{spec.factor:g} for "
                     f"{spec.duration_s * 1e3:.2f}ms")

    def _slow_middlebox(self, spec: FaultSpec) -> None:
        index = spec.position if spec.position is not None else 0
        index = min(index, self.chain.n_mboxes - 1)
        mbox = self.chain.middleboxes[index]
        original = mbox.processing_cycles
        base = (original if original is not None
                else self.chain.costs.processing_cycles)
        mbox.processing_cycles = base * spec.factor

        def restore():
            mbox.processing_cycles = original
            self._record(f"slow-middlebox {mbox.name} restored")

        self.chain.sim.schedule_callback(spec.duration_s, restore)
        self._record(f"slow-middlebox {mbox.name} x{spec.factor:g} for "
                     f"{spec.duration_s * 1e3:.2f}ms")

    def _queue_pressure(self, spec: FaultSpec) -> None:
        buffer = self.chain.buffer
        original = buffer.max_held
        buffer.max_held = max(64, int(original / spec.factor))

        def restore():
            buffer.max_held = original
            self._record("queue-pressure released")

        self.chain.sim.schedule_callback(spec.duration_s, restore)
        self._record(f"queue-pressure buffer bound {original} -> "
                     f"{buffer.max_held} for {spec.duration_s * 1e3:.2f}ms")

    def _arm_recovery_reconfig(self, spec: FaultSpec) -> None:
        if self.orchestrator is None:
            raise ValueError(
                "reconfig-during-recovery faults need an orchestrator")
        if not self._armed_recovery_reconfigs:
            self.orchestrator.recovery_hooks.append(
                self._on_recovery_reconfig)
        self._armed_recovery_reconfigs.append(spec)

    def _on_recovery_reconfig(self, phase: str, positions: List[int]) -> None:
        from ..core.reconfig import ReconfigOp
        for spec in list(self._armed_recovery_reconfigs):
            if (spec.phase or "fetching") != phase:
                continue
            self._armed_recovery_reconfigs.remove(spec)
            op = ReconfigOp.parse(spec.operation)
            if op is None:
                continue
            self.orchestrator.request_reconfig(op)
            self._record(f"reconfig {spec.operation!r} requested during "
                         f"recovery phase {phase!r} of {positions}")
