"""Chaos fault injection + invariant auditing.

Three layers (see PROTOCOL.md, "Failure model & chaos testing"):

- **Injection**: scripted :class:`FaultPlan` schedules and the
  randomized :class:`ChaosMonkey`, both driving ``Server.fail()`` /
  ``Network.impair()`` through seeded RNG streams.
- **Hardened paths under test**: ``repro.net.retry`` and the
  re-entrant recovery in ``repro.orchestration`` (exercised, not
  defined, here).
- **Audit**: :class:`InvariantAuditor` checking the §4/§5 invariants
  against a :class:`ShadowOracle`, and the soak harness behind
  ``python -m repro chaos``.
"""

from .auditor import InvariantAuditor, InvariantViolation, ShadowOracle
from .monkey import (
    CTRLPLANE_KIND_WEIGHTS,
    ChaosMonkey,
    DEFAULT_KIND_WEIGHTS,
    OVERLOAD_KIND_WEIGHTS,
)
from .plan import (
    FAULT_KINDS,
    IMPAIRED_DELIVERY,
    ORCH_FAULT_KINDS,
    OVERLOAD_FAULT_KINDS,
    RECONFIG_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from .soak import (
    OverloadSpec,
    ScheduleResult,
    SoakConfig,
    SoakResult,
    run_ctrlplane_schedule,
    run_impaired_schedule,
    run_overload_schedule,
    run_reconfig_schedule,
    run_schedule,
    run_soak,
)

__all__ = [
    "CTRLPLANE_KIND_WEIGHTS",
    "ChaosMonkey",
    "DEFAULT_KIND_WEIGHTS",
    "FAULT_KINDS",
    "IMPAIRED_DELIVERY",
    "ORCH_FAULT_KINDS",
    "OVERLOAD_FAULT_KINDS",
    "OVERLOAD_KIND_WEIGHTS",
    "RECONFIG_FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InvariantAuditor",
    "InvariantViolation",
    "OverloadSpec",
    "ScheduleResult",
    "ShadowOracle",
    "SoakConfig",
    "SoakResult",
    "run_ctrlplane_schedule",
    "run_impaired_schedule",
    "run_overload_schedule",
    "run_reconfig_schedule",
    "run_schedule",
    "run_soak",
]
