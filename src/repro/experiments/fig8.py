"""Fig 8: per-packet latency vs offered load.

Three panels: (a) Monitor with 8 threads and sharing level 8,
(b) MazuNAT with 1 thread, (c) MazuNAT with 8 threads.  Latency stays
flat until each system's saturation point, then spikes as queues fill;
FTC's added latency is tens of microseconds (§7.3).
"""

from __future__ import annotations

from typing import List

from ..middlebox import MazuNAT, Monitor
from .runner import ExperimentResult, latency_under_load

SYSTEMS = ["NF", "FTC", "FTMB"]

#: Offered loads (Mpps) per panel, as in the paper's x-axes.
LOADS_A = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
LOADS_B = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
LOADS_C = [1, 2, 3, 4, 5, 6, 7, 8, 9]


def _panel(name: str, middleboxes_factory, loads: List[float],
           n_threads: int, seed: int) -> ExperimentResult:
    result = ExperimentResult(
        experiment=name,
        headers=["Load (Mpps)"] + [f"{s} (us)" for s in SYSTEMS])
    for load in loads:
        row = [load]
        for system in SYSTEMS:
            egress = latency_under_load(
                system, middleboxes_factory, rate_pps=load * 1e6,
                n_threads=n_threads, f=1, seed=seed)
            row.append(round(egress.latency.mean_us(), 1)
                       if len(egress.latency) else float("nan"))
        result.add(*row)
    return result


def run_panel_a(seed: int = 0) -> ExperimentResult:
    return _panel(
        "Figure 8a: Monitor (8 threads, sharing level 8) latency vs load",
        lambda: [Monitor(name="mon", sharing_level=8, n_threads=8)],
        LOADS_A, n_threads=8, seed=seed)


def run_panel_b(seed: int = 0) -> ExperimentResult:
    return _panel(
        "Figure 8b: MazuNAT (1 thread) latency vs load",
        lambda: [MazuNAT(name="nat")], LOADS_B, n_threads=1, seed=seed)


def run_panel_c(seed: int = 0) -> ExperimentResult:
    return _panel(
        "Figure 8c: MazuNAT (8 threads) latency vs load",
        lambda: [MazuNAT(name="nat")], LOADS_C, n_threads=8, seed=seed)


def run(seed: int = 0) -> List[ExperimentResult]:
    return [run_panel_a(seed), run_panel_b(seed), run_panel_c(seed)]


def main() -> None:
    for panel in run():
        print(panel.render())
        print()


if __name__ == "__main__":
    main()
