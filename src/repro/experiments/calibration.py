"""Calibration provenance: every cost-model constant and its source.

``python -m repro.experiments.calibration`` prints the table; tests
assert the constants stay anchored to the paper.
"""

from __future__ import annotations

from ..core.costs import DEFAULT_COSTS, CostModel
from ..metrics import format_table
from .runner import ExperimentResult

__all__ = ["provenance", "run"]

#: (field, value formatter, paper source)
_PROVENANCE = [
    ("cpu_hz", "{:.1e} Hz", "§7.1: Xeon D-1540 at 2.0 GHz"),
    ("processing_cycles", "{:.0f} cy", "Table 2: packet processing 355±12"),
    ("locking_cycles", "{:.0f} cy", "Table 2: locking 152±11"),
    ("piggyback_copy_cycles", "{:.0f} cy",
     "Table 2: copying piggybacked state 58±6 (construction)"),
    ("piggyback_apply_cycles", "{:.0f} cy",
     "derived: replica-side apply (dependency check + small memcpy)"),
    ("piggyback_attach_cycles", "{:.0f} cy",
     "derived: forwarder attach of one fed-back log"),
    ("forwarder_cycles", "{:.0f} cy", "Table 2: forwarder 8±2"),
    ("buffer_cycles", "{:.0f} cy", "Table 2: buffer 100±4"),
    ("cycle_jitter_frac", "{:.0%}", "Table 2's ± bands (~3%)"),
    ("per_state_byte_cycles", "{:.3f} cy/B", "Fig 5 calibration"),
    ("per_wire_byte_cycles", "{:.2f} cy/B", "DPDK rx/tx byte handling"),
    ("mbuf_extension_cycles", "{:.0f} cy",
     "Fig 5: chained mbuf when piggyback exceeds tailroom"),
    ("nic_pps", "{:.3g} pps",
     "footnote 1: ConnectX-3 engine 9.6-10.6 Mpps (midpoint)"),
    ("nic_queue_depth", "{:.0f} descriptors", "typical DPDK rx ring"),
    ("hop_delay_s", "{:.1e} s", "§7.3: 6-7 us one-way per hop (midpoint)"),
    ("bandwidth_bps", "{:.0e} bps", "§7.1: 40 GbE data plane"),
    ("feedback_bandwidth_bps", "{:.0e} bps",
     "§7.1: 10 GbE buffer->forwarder dissemination link"),
    ("htm_commit_cycles", "{:.0f} cy", "§3.2 hybrid TM extension"),
    ("lock_wakeup_cycles", "{:.0f} cy",
     "adaptive-mutex handoff under light contention (Fig 6 dips)"),
    ("n_partitions", "{:.0f}", "§4.2: exceeds the 8-core count"),
    ("propagation_timeout_s", "{:.0e} s", "§5.1 forwarder timer (chosen)"),
    ("ftmb_pal_crit_cycles", "{:.0f} cy",
     "FTMB in-lock PAL logging (fits Fig 6's 1.2x at sharing 8)"),
    ("ftmb_pal_tx_cycles", "{:.0f} cy",
     "FTMB PAL assembly/transmit (fits Fig 7's 1-thread ratio)"),
    ("snapshot_stall_s", "{:.0e} s", "§7.4: 6 ms artificial delay"),
    ("snapshot_period_s", "{:.0e} s", "§7.4: every 50 ms"),
]


def provenance(costs: CostModel = DEFAULT_COSTS):
    """(field, formatted value, source) rows."""
    rows = []
    for field, fmt, source in _PROVENANCE:
        rows.append((field, fmt.format(getattr(costs, field)), source))
    return rows


def run(costs: CostModel = DEFAULT_COSTS) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Cost-model calibration provenance",
        headers=["Constant", "Value", "Source"])
    for row in provenance(costs):
        result.add(*row)
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
