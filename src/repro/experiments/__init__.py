"""Experiment harness: one module per table/figure of the paper.

Each module exposes ``run(...) -> ExperimentResult`` (or a list of
results for multi-panel figures) plus a ``main()`` that prints the
same rows/series the paper reports.  Run any of them directly::

    python -m repro.experiments.fig9
"""

from . import (
    ablations,
    calibration,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    reconfig,
    table2,
)
from .runner import (
    ExperimentResult,
    latency_under_load,
    quick_mode,
    saturation_throughput,
)
from .systems import SYSTEMS, build_system

__all__ = [
    "ExperimentResult",
    "ablations",
    "calibration",
    "SYSTEMS",
    "build_system",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "latency_under_load",
    "quick_mode",
    "reconfig",
    "saturation_throughput",
    "table2",
]
