"""Table 2: per-packet CPU-cycle breakdown for MazuNAT in Ch-2.

"To benchmark FTC, we breakdown the performance of the MazuNAT
middlebox configured with eight threads in a chain of length two ...
The results only show the computational overhead and exclude device
and network IO."
"""

from __future__ import annotations

from ..core import FTCChain
from ..core.costs import DEFAULT_COSTS
from ..metrics import EgressRecorder
from ..middlebox import MazuNAT
from ..net import TrafficGenerator, balanced_flows
from ..sim import Simulator
from .runner import ExperimentResult, quick_mode

#: Paper-reported cycles (mean, +/-).
PAPER = {
    "Packet processing": (355, 12),
    "Locking": (152, 11),
    "Copying piggybacked state": (58, 6),
    "Forwarder": (8, 2),
    "Buffer": (100, 4),
}


def run(n_threads: int = 8, seed: int = 0) -> ExperimentResult:
    sim = Simulator()
    egress = EgressRecorder(sim)
    chain = FTCChain(
        sim,
        [MazuNAT(name="mazunat1"), MazuNAT(name="mazunat2",
                                           external_ip="203.0.113.9")],
        f=1, deliver=egress, costs=DEFAULT_COSTS, n_threads=n_threads,
        seed=seed)
    chain.start()
    count = 5_000 if quick_mode() else 50_000
    TrafficGenerator(sim, chain.ingress, rate_pps=2e6,
                     flows=balanced_flows(64, n_threads), count=count)
    sim.run(until=count / 2e6 + 1e-3)

    runtime = chain.replica_at(0).runtime
    counters = runtime.counters
    # Piggyback copy cycles are only spent on writing transactions
    # (MazuNAT's first packet per flow); Table 2 reports the per-packet
    # average over the measured stream.
    measured = {
        "Packet processing": counters.per_packet("processing"),
        "Locking": counters.per_packet("locking"),
        "Copying piggybacked state": (counters.piggyback_copy /
                                      max(1, runtime.state.applied)),
        "Forwarder": (chain.forwarder.cycles_spent /
                      max(1, chain.forwarder.packets_seen)),
        "Buffer": (chain.buffer.cycles_spent /
                   max(1, chain.buffer.packets_seen)),
    }

    result = ExperimentResult(
        experiment="Table 2: CPU cycles per packet (MazuNAT, chain of 2)",
        headers=["Component", "Paper (cycles)", "Measured (cycles)"])
    for component, (mean, pm) in PAPER.items():
        result.add(component, f"{mean} +/- {pm}",
                   round(measured[component], 1))
    result.notes.append(
        "Copy cost is reported per piggyback log constructed; MazuNAT "
        "only writes state on a flow's first packet, so per-packet "
        "averaging over all traffic would dilute it.")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
