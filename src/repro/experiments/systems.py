"""System factory shared by experiments and benchmarks."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..baselines import FTMBChain, NFChain, RemoteStoreChain
from ..core import FTCChain
from ..core.costs import CostModel, DEFAULT_COSTS
from ..middlebox.base import Middlebox
from ..sim import Simulator

__all__ = ["build_system", "SYSTEMS"]

#: System names, in the order the paper's figures list them.
SYSTEMS = ["NF", "FTC", "FTMB", "FTMB+Snapshot"]


def build_system(kind: str, sim: Simulator, middleboxes: Sequence[Middlebox],
                 deliver: Callable, costs: CostModel = DEFAULT_COSTS,
                 n_threads: int = 8, f: int = 1, seed: int = 0, net=None,
                 telemetry=None):
    """Instantiate one of the compared systems over a middlebox list.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) is honoured by
    the FTC chain; the baselines ignore it (they carry no piggyback or
    replication machinery worth instrumenting).
    """
    normalized = kind.lower()
    if normalized == "nf":
        return NFChain(sim, middleboxes, deliver=deliver, costs=costs,
                       n_threads=n_threads, seed=seed, net=net)
    if normalized == "ftc":
        return FTCChain(sim, middleboxes, f=f, deliver=deliver, costs=costs,
                        n_threads=n_threads, seed=seed, net=net,
                        telemetry=telemetry)
    if normalized == "ftmb":
        return FTMBChain(sim, middleboxes, deliver=deliver, costs=costs,
                         n_threads=n_threads, seed=seed, net=net)
    if normalized in ("ftmb+snapshot", "ftmb+snap"):
        return FTMBChain(sim, middleboxes, deliver=deliver, costs=costs,
                         n_threads=n_threads, seed=seed, snapshots=True,
                         net=net)
    if normalized in ("remote-store", "statelessnf"):
        return RemoteStoreChain(sim, middleboxes, deliver=deliver,
                                costs=costs, n_threads=n_threads, seed=seed,
                                net=net)
    raise ValueError(f"unknown system {kind!r}; options: "
                     f"{SYSTEMS + ['remote-store']}")
