"""Live reconfiguration under load: zero-loss op-by-op audit (§11).

Not a paper figure -- the paper reconfigures only to recover from
failures -- but the operational question any deployment hits first:
can the chain be *changed* (rescaled, migrated, restructured, re-
classified) while carrying traffic, without dropping or reordering a
single packet?  Each row runs one operation against a fresh Ch-3
chain under offered load on impaired-but-reliable links (PROTOCOL.md
§8) and audits exactly-once, per-flow-ordered egress across the
switch.  Lost and Reordered must read 0 on every row.
"""

from __future__ import annotations

from ..chaos.auditor import ShadowOracle
from ..core import FTCChain
from ..core.costs import CostModel
from ..core.reconfig import (
    ClassifierRule,
    ClassifierSet,
    ReconfigOp,
    apply_reconfig,
)
from ..middlebox import ch_n
from ..middlebox.monitor import Monitor
from ..net import TrafficGenerator, balanced_flows
from ..sim import Simulator
from .runner import ExperimentResult, quick_mode

OFFERED_PPS = 2e4
DROP_RATE = 0.02
DUP_RATE = 0.01
REORDER_RATE = 0.01
CORRUPT_RATE = 0.005

#: The scripted operations, one row each (built fresh per run -- an
#: inserted Middlebox instance cannot be shared between chains).
OP_BUILDERS = (
    ("classifier", lambda: ReconfigOp(kind="classifier",
                                      classifier=ClassifierSet(
                                          version=1,
                                          rules=(ClassifierRule(
                                              action="allow"),)))),
    ("rescale", lambda: ReconfigOp(kind="rescale", position=1,
                                   n_threads=4)),
    ("migrate", lambda: ReconfigOp(kind="migrate", position=1)),
    ("evacuate", lambda: ReconfigOp(kind="evacuate", position=2)),
    ("insert", lambda: ReconfigOp(kind="insert", index=1,
                                  middlebox=Monitor(name="probe"))),
    ("remove", lambda: ReconfigOp(kind="remove",
                                  middlebox_name="monitor2")),
)


def _run_point(op: ReconfigOp, duration_s: float, seed: int):
    sim = Simulator()
    oracle = ShadowOracle(track_order=True)
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=oracle,
                     costs=CostModel(cycle_jitter_frac=0.0), n_threads=2,
                     seed=seed, reliable_links=True)
    chain.start()
    chain.net.impair_data(drop_rate=DROP_RATE, dup_rate=DUP_RATE,
                          reorder_rate=REORDER_RATE,
                          corrupt_rate=CORRUPT_RATE, seed=seed)
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=OFFERED_PPS,
                                 flows=balanced_flows(8, 2))
    outcome = {}

    def drive():
        report = yield from apply_reconfig(chain, op)
        outcome["report"] = report

    def start():
        sim.process(drive(), name=f"reconfig-{op.kind}")

    sim.schedule_callback(duration_s * 0.4, start)
    sim.run(until=duration_s)
    generator.stop()
    chain.net.heal()
    chain.net.clear_impairment()
    # Retransmission tails + hold release pump at NIC line rate.
    sim.run(until=duration_s + 60e-3)
    return chain, generator, oracle, outcome.get("report")


def run(seed: int = 0) -> ExperimentResult:
    duration_s = 30e-3 if quick_mode() else 60e-3
    result = ExperimentResult(
        experiment="Live reconfiguration under load: zero-loss audit per "
                   f"operation (Ch-3, f=1, {OFFERED_PPS:g} pps offered, "
                   f"drop={DROP_RATE:g} impaired links)",
        headers=["Operation", "Sent", "Released", "Lost", "Reordered",
                 "Held pkts", "Migrated KB", "Drain ms", "Switch ms",
                 "Total ms"])
    for name, build in OP_BUILDERS:
        chain, generator, oracle, report = _run_point(
            build(), duration_s, seed)
        if report is None or not report.committed:
            raise RuntimeError(
                f"reconfiguration {name!r} did not commit "
                f"({'no report' if report is None else report.detail})")
        result.add(
            name,
            generator.sent,
            oracle.released,
            generator.sent - oracle.released,
            oracle.out_of_order,
            report.held_packets,
            round(report.bytes_transferred / 1024.0, 1),
            round(report.drain_s * 1e3, 2),
            round(report.switch_s * 1e3, 2),
            round(report.total_s * 1e3, 2))
    result.notes.append(
        "Lost = offered - released after the drain runway; Reordered = "
        "per-flow egress order inversions (ShadowOracle).  Both must be "
        "0: the two-phase switch (prepare/warm, drain, hold, migrate, "
        "re-bind, release in order) is lossless by design, PROTOCOL.md "
        "§11.")
    result.notes.append(
        f"Links impaired throughout: drop={DROP_RATE:g} dup={DUP_RATE:g} "
        f"reorder={REORDER_RATE:g} corrupt={CORRUPT_RATE:g} per hop, "
        "recovered by the §8 reliability layer; the operation fires at "
        "40% of the run under full offered load.")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
