"""Control-plane failover: recovery delay under orchestrator faults.

Figure-13-style companion table for the replicated control plane
(PROTOCOL.md §9).  A Ch-3 chain loses its middle middlebox at a fixed
instant while the orchestrator ensemble itself is attacked:

* **baseline** -- healthy 3-member ensemble, no control-plane fault;
* **leader-crash (pre-detect)** -- the leader crashes 1 ms after the
  data-plane failure, before its monitor confirms it; the next leader
  must detect and recover from scratch.
* **leader-crash (mid-recovery)** -- the leader crashes while the
  recovery it is driving sits in the fetching phase; the successor
  replays the journal and resumes the same recovery.
* **leader-partition (mid-recovery)** -- as above, but the leader is
  partitioned from every peer instead of crashing; its lease expires,
  a successor takes over, and the stale leader's later commands are
  fenced by the epoch gate.

Columns decompose the failover: detection delay (failure -> confirmed),
election delay (control-plane fault -> next leader-elected), resume
delay (leader-elected -> recovery committed), and the end-to-end total
(failure -> committed).  The paper measures only the baseline column
(§7.5); the others quantify the added cost of losing the orchestrator
at the worst possible moments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import FTCChain
from ..core.costs import CostModel
from ..metrics import EgressRecorder, confidence_interval95
from ..middlebox import ch_n
from ..net import TrafficGenerator, balanced_flows
from ..orchestration import CloudNetwork, OrchestratorEnsemble, place_chain
from ..orchestration.election import ElectionConfig
from ..sim import Simulator
from ..telemetry import Telemetry
from .runner import ExperimentResult, quick_mode

#: Deterministic service costs so the table isolates protocol delays.
COSTS = CostModel(cycle_jitter_frac=0.0)

#: Tight leases keep failover well inside the measurement window.
ELECTION = ElectionConfig(lease_s=6e-3, renew_every_s=2e-3,
                          candidacy_base_s=2e-3)

#: The chain failure every scenario injects (middle of Ch-3).
FAIL_POSITION = 1
T_FAIL = 20e-3

SCENARIOS = ("baseline", "leader-crash (pre-detect)",
             "leader-crash (mid-recovery)",
             "leader-partition (mid-recovery)")


def _first(telemetry: Telemetry, kind: str,
           after: float = 0.0) -> Optional[float]:
    for event in telemetry.timeline.events:
        if event.kind == kind and event.t >= after:
            return event.t
    return None


def _one_trial(scenario: str, seed: int) -> Dict[str, float]:
    sim = Simulator()
    net = CloudNetwork(sim, hop_delay_s=COSTS.hop_delay_s,
                       bandwidth_bps=COSTS.bandwidth_bps, rtt_jitter_frac=0.0,
                       seed=seed)
    egress = EgressRecorder(sim)
    telemetry = Telemetry(max_trace_events=0)
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=egress,
                     costs=COSTS, net=net, n_threads=2, seed=seed,
                     telemetry=telemetry)
    place_chain(chain, ["core", "core", "core"])
    chain.start()
    ensemble = OrchestratorEnsemble(sim, chain, n=3, election=ELECTION,
                                    heartbeat_interval_s=1e-3, region="core")
    ensemble.start()
    TrafficGenerator(sim, chain.ingress, rate_pps=2e4,
                     flows=balanced_flows(8, 2))

    state: Dict[str, float] = {}

    def fault_leader(action):
        leader = ensemble.leader
        if leader is None:  # mid-election; the scenario still measures
            return
        state["orch_fault_at"] = sim.now
        action(leader)

    def crash(leader):
        leader.crash()
        sim.schedule_callback(30e-3, leader.restart)

    def partition(leader):
        others = [name for name in net.servers
                  if name != leader.server_name]
        token = net.partition([leader.server_name], others)
        sim.schedule_callback(15e-3, lambda: net.heal(token))

    def on_phase(phase: str, positions: List[int]) -> None:
        if phase != "fetching" or "orch_fault_at" in state:
            return
        if scenario == "leader-crash (mid-recovery)":
            fault_leader(crash)
        elif scenario == "leader-partition (mid-recovery)":
            fault_leader(partition)

    if scenario.endswith("(mid-recovery)"):
        ensemble.recovery_hooks.append(on_phase)
    elif scenario == "leader-crash (pre-detect)":
        sim.schedule_callback(T_FAIL + 1e-3, lambda: fault_leader(crash))

    sim.schedule_callback(T_FAIL, lambda: chain.fail_position(FAIL_POSITION))
    sim.run(until=0.2)

    confirmed = _first(telemetry, "confirmed", after=T_FAIL)
    committed = _first(telemetry, "committed", after=T_FAIL)
    if confirmed is None or committed is None:
        raise AssertionError(
            f"{scenario} seed={seed}: recovery did not complete "
            f"(confirmed={confirmed}, committed={committed})")
    result = {
        "detect": confirmed - T_FAIL,
        "elect": 0.0,
        "total": committed - T_FAIL,
        "epochs": float(len(ensemble.election_log)),
        "fenced": float(ensemble.gate.fenced_commands),
    }
    resume_from = confirmed
    if scenario != "baseline":
        fault_at = state.get("orch_fault_at")
        if fault_at is None:
            raise AssertionError(
                f"{scenario} seed={seed}: control-plane fault never fired")
        elected = _first(telemetry, "leader-elected", after=fault_at)
        if elected is None:
            raise AssertionError(
                f"{scenario} seed={seed}: no successor elected")
        result["elect"] = elected - fault_at
        resume_from = max(resume_from, elected)
    result["resume"] = max(0.0, committed - resume_from)
    return result


def run(trials: int = None) -> ExperimentResult:
    if trials is None:
        trials = 2 if quick_mode() else 5
    result = ExperimentResult(
        experiment="Control-plane failover: Ch-3 recovery under "
                   "orchestrator faults (3-member ensemble)",
        headers=["Scenario", "Detect (ms)", "Elect (ms)", "Resume (ms)",
                 "Total (ms)", "Epochs", "Fenced"])
    for scenario in SCENARIOS:
        samples = [_one_trial(scenario, seed) for seed in range(trials)]
        detect_ms, _ = confidence_interval95(
            [s["detect"] * 1e3 for s in samples])
        elect_ms, _ = confidence_interval95(
            [s["elect"] * 1e3 for s in samples])
        resume_ms, _ = confidence_interval95(
            [s["resume"] * 1e3 for s in samples])
        total_ms, total_hw = confidence_interval95(
            [s["total"] * 1e3 for s in samples])
        epochs = sum(s["epochs"] for s in samples) / len(samples)
        fenced = sum(s["fenced"] for s in samples) / len(samples)
        result.add(scenario, f"{detect_ms:.1f}",
                   "-" if scenario == "baseline" else f"{elect_ms:.1f}",
                   f"{resume_ms:.1f}", f"{total_ms:.1f} +/- {total_hw:.1f}",
                   f"{epochs:.1f}", f"{fenced:.1f}")
    result.notes.append(
        "Elect spans control-plane fault -> successor's leader-elected "
        "event; Resume spans max(confirmed, elected) -> recovery "
        "committed.  Mid-recovery scenarios resume from the replicated "
        "command journal rather than restarting detection.")
    result.notes.append(
        "The partition scenario leaves the old leader running; its "
        "post-partition commands die before taking effect -- the "
        "quorum-less journal append aborts them, and any that reach "
        "the chain under a superseded epoch land in the Fenced column.")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
