"""Fig 7: MazuNAT throughput vs thread count (NF / FTC / FTMB).

"FTC's throughput is 1.37--1.94x that of FTMB's for 1 to 4 threads ...
FTC incurs 1--10% throughput overhead compared to NF" -- and both NF
and FTC hit the NIC cap at 8 threads, because FTC does not replicate
reads while FTMB logs them.
"""

from __future__ import annotations

from ..middlebox import MazuNAT
from .runner import ExperimentResult, saturation_throughput

THREAD_COUNTS = [1, 2, 4, 8]
SYSTEMS = ["NF", "FTC", "FTMB"]


def run(seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 7: MazuNAT throughput (Mpps) vs threads",
        headers=["Threads"] + SYSTEMS + ["FTC/FTMB"])
    for threads in THREAD_COUNTS:
        row = [threads]
        rates = {}
        for system in SYSTEMS:
            rates[system] = saturation_throughput(
                system, lambda: [MazuNAT(name="nat")],
                n_threads=threads, f=1, seed=seed)
            row.append(round(rates[system], 2))
        row.append(round(rates["FTC"] / rates["FTMB"], 2))
        result.add(*row)
    result.notes.append(
        "Paper: FTC/FTMB = 1.37-1.94x for 1-4 threads; NF and FTC reach "
        "the NIC cap at 8 threads; FTC within 1-10% of NF.")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
