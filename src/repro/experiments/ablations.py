"""Ablations of FTC's design choices (§3.2, §4.3).

Three of the paper's design arguments, isolated:

* **Dependency vectors vs a single sequence number** (§4.3): with one
  state partition, every transaction conflicts at the head and
  replication is totally ordered -- multithreaded scaling dies.
* **In-chain replication vs dedicated replicas** (§3.2): server count
  for a chain of n middleboxes at replication factor f+1.
* **State piggybacking vs separate replication messages** (§3.2):
  separate messages consume NIC packet-engine slots exactly like
  FTMB's PALs; the remote-store design adds round trips on top.
"""

from __future__ import annotations

from ..core.costs import DEFAULT_COSTS
from ..middlebox import Monitor, ch_n
from .runner import ExperimentResult, latency_under_load, saturation_throughput

__all__ = ["run_depvec", "run_server_cost", "run_piggybacking",
           "run_htm", "run"]


def run_depvec(n_threads: int = 8, seed: int = 0) -> ExperimentResult:
    """Partial order (many partitions) vs total order (one partition)."""
    result = ExperimentResult(
        experiment="Ablation: dependency vectors vs total ordering "
                    "(Monitor, 8 threads, sharing level 1)",
        headers=["State partitions", "FTC throughput (Mpps)"])
    for partitions in (1, 2, 4, DEFAULT_COSTS.n_partitions):
        mpps = saturation_throughput(
            "ftc",
            lambda: [Monitor(name="mon", sharing_level=1,
                             n_threads=n_threads)],
            costs=DEFAULT_COSTS.with_overrides(n_partitions=partitions),
            n_threads=n_threads, f=1, seed=seed)
        result.add(partitions, round(mpps, 2))
    result.notes.append(
        "One partition = §4.3's single sequence number: all transactions "
        "serialize at the head even with disjoint state.")
    return result


def run_server_cost(max_length: int = 5, f: int = 1) -> ExperimentResult:
    """§3.2's replica-count argument, as deployed by this library."""
    result = ExperimentResult(
        experiment=f"Ablation: servers needed for a chain (f={f})",
        headers=["Chain length", "FTC", "Dedicated replicas (n*(f+1))",
                 "Consensus (n*(2f+1))", "FTMB as built (3n)"])
    for n in range(2, max_length + 1):
        result.add(n, max(n, f + 1), n * (f + 1), n * (2 * f + 1), 3 * n)
    result.notes.append(
        "FTC reuses the n chain servers as replicas; every alternative "
        "multiplies server count by the replication factor.")
    return result


def run_piggybacking(n_threads: int = 8, seed: int = 0) -> ExperimentResult:
    """Piggybacked state vs per-packet replication messages."""
    result = ExperimentResult(
        experiment="Ablation: piggybacking vs separate replication messages",
        headers=["Design", "Throughput (Mpps)", "Latency at 2 Mpps (us)"])
    workload = lambda: [Monitor(name="mon", sharing_level=1,
                                n_threads=n_threads)]
    for label, kind in (("FTC (piggybacked)", "ftc"),
                        ("Separate messages (FTMB-style)", "ftmb"),
                        ("Remote state store", "remote-store")):
        mpps = saturation_throughput(kind, workload, n_threads=n_threads,
                                     f=1, seed=seed)
        latency = latency_under_load(
            kind, workload,
            rate_pps=2e6 if kind != "remote-store" else 2e5,
            n_threads=n_threads, f=1, seed=seed).latency.mean_us()
        result.add(label, round(mpps, 2), round(latency, 1))
    result.notes.append(
        "Remote store latency measured at 0.2 Mpps (it saturates far "
        "below 2 Mpps); its throughput is RTT-bound per state access.")
    return result


def run_htm(seed: int = 0) -> ExperimentResult:
    """§3.2: hybrid transactional memory vs pure 2PL, single thread.

    With one thread there is no contention, so every transaction takes
    the HTM fast path and saves (locking - htm_commit) cycles.
    """
    from ..core import FTCChain
    from ..metrics import EgressRecorder
    from ..net import TrafficGenerator, balanced_flows
    from ..sim import Simulator

    result = ExperimentResult(
        experiment="Ablation: hybrid TM fast path (Monitor, 1 thread)",
        headers=["Mode", "Throughput (Mpps)"])
    for label, use_htm in (("2PL locks", False), ("Hybrid HTM", True)):
        sim = Simulator()
        egress = EgressRecorder(sim)
        chain = FTCChain(sim, [Monitor(name="mon", sharing_level=1,
                                       n_threads=8)],
                         f=1, deliver=egress, n_threads=1, seed=seed,
                         use_htm=use_htm)
        chain.start()
        TrafficGenerator(sim, chain.ingress, rate_pps=12e6,
                         flows=balanced_flows(16, 1))
        sim.run(until=0.5e-3)
        egress.throughput.start_window()
        sim.run(until=1.5e-3)
        result.add(label, round(egress.throughput.rate_mpps(), 2))
    result.notes.append(
        "Uncontended transactions elide the lock protocol "
        f"({DEFAULT_COSTS.locking_cycles:.0f} -> "
        f"{DEFAULT_COSTS.htm_commit_cycles:.0f} cycles).")
    return result


def run(seed: int = 0):
    return [run_depvec(seed=seed), run_server_cost(),
            run_piggybacking(seed=seed), run_htm(seed=seed)]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
