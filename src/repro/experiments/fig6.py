"""Fig 6: Monitor throughput vs sharing level (NF / FTC / FTMB).

"We configure Monitor to run with eight threads and measure its
throughput with different sharing levels. ... For sharing levels of 8
and 2, FTC achieves a throughput that is 1.2x and 1.4x that of FTMB's"
-- and NF/FTC hit the NIC's packet processing capacity at sharing 1.
"""

from __future__ import annotations

from ..middlebox import Monitor
from .runner import ExperimentResult, saturation_throughput

SHARING_LEVELS = [1, 2, 4, 8]
SYSTEMS = ["NF", "FTC", "FTMB"]


def run(n_threads: int = 8, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 6: Monitor throughput (Mpps) vs sharing level",
        headers=["Sharing level"] + SYSTEMS + ["FTC/FTMB"])
    for sharing in SHARING_LEVELS:
        row = [sharing]
        rates = {}
        for system in SYSTEMS:
            rates[system] = saturation_throughput(
                system,
                lambda s=sharing: [Monitor(name="mon", sharing_level=s,
                                           n_threads=n_threads)],
                n_threads=n_threads, f=1, seed=seed)
            row.append(round(rates[system], 2))
        row.append(round(rates["FTC"] / rates["FTMB"], 2))
        result.add(*row)
    result.notes.append(
        "Paper: FTC/FTMB = 1.2x at sharing 8, 1.4x at sharing 2; NF and "
        "FTC reach the NIC cap at sharing 1; FTMB is PAL-capped at "
        "~5.26 Mpps.")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
