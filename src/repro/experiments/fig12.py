"""Fig 12: replication factor's impact on Ch-5.

"For replication factors of 2--5 (i.e., tolerating 1 to 5 failures
[sic: 1-4]), Figure 12 shows FTC's performance for Ch-5 in two
settings where Monitors run with 1 or 8 threads. ... FTC incurs only
3% throughput overhead [at replication factor 5] ... latency only
increases by 8 us."
"""

from __future__ import annotations

from ..middlebox import ch_n
from .runner import ExperimentResult, latency_under_load, saturation_throughput

#: Replication factor = f + 1 (replicas per middlebox).
REPLICATION_FACTORS = [2, 3, 4, 5]


def run(seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 12: FTC on Ch-5 vs replication factor",
        headers=["Replication factor", "Throughput, 8 thr (Mpps)",
                 "Latency, 1 thr (us)"])
    base_tput = None
    base_lat = None
    for factor in REPLICATION_FACTORS:
        f = factor - 1
        # High replication factors multiply per-packet work at every
        # replica; keep the windows tight (the simulation is
        # deterministic, so short windows stay precise).
        tput = saturation_throughput(
            "ftc", lambda: ch_n(5, sharing_level=1, n_threads=8),
            n_threads=8, f=f, seed=seed, warm_s=0.5e-3, window_s=1e-3)
        latency = latency_under_load(
            "ftc", lambda: ch_n(5, sharing_level=1, n_threads=1),
            rate_pps=2e6, n_threads=1, f=f, seed=seed,
            warm_s=0.4e-3, window_s=1.2e-3).latency.mean_us()
        if base_tput is None:
            base_tput, base_lat = tput, latency
        result.add(factor, round(tput, 2), round(latency, 1))
    result.notes.append(
        f"Throughput drop at factor 5: "
        f"{100 * (1 - result.rows[-1][1] / base_tput):.1f}% "
        "(paper: ~3%); latency increase: "
        f"{result.rows[-1][2] - base_lat:.1f} us (paper: ~8 us).")
    result.notes.append(
        "At factors 4-5 the 10 GbE buffer->forwarder dissemination link "
        "saturates (4 wrap-group logs per packet at the NIC-capped "
        "10.5 Mpps exceed 10 Gbps).  The paper's testbed ran at 8.3 Mpps "
        "where the same volume just fits -- and §7.4 itself notes the "
        "replication factor cannot grow arbitrarily because piggyback "
        "messages become impractical.")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
