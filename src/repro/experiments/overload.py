"""Overload sweep: goodput/latency/shedding vs offered load (§12).

Not a paper figure -- the testbed never pushed past NIC saturation --
but the operative question for any production SFC deployment: what
happens when offered load exceeds what the chain can sustain?  Each
row drives a heavy-tailed prioritized workload at a multiple of the
chain's sustainable capacity through the full overload stack
(admission control + backpressure bus + SLO-driven brownout) and
reports where the excess went: egress goodput holds near capacity,
the ingress gate sheds the rest lowest-class-first, latency stays
bounded, and nothing is dropped inside the chain.
"""

from __future__ import annotations

from ..chaos.soak import OVERLOAD_COSTS, OverloadSpec
from ..core import FTCChain
from ..core.admission import AdmissionControl, BackpressureBus
from ..flight.slo import SLOObjective, SLOWatchdog, run_probes
from ..metrics import EgressRecorder
from ..metrics.stats import percentile
from ..middlebox import ch_n
from ..net import WorkloadGenerator, WorkloadSpec
from ..orchestration.brownout import BrownoutController
from ..sim import RandomStreams, Simulator
from .runner import ExperimentResult, quick_mode

#: Offered load as multiples of sustainable capacity (full mode).
LOAD_MULTIPLIERS = [0.5, 1.0, 2.0, 4.0, 8.0]


def _run_point(multiplier: float, duration_s: float, seed: int,
               spec: OverloadSpec):
    sim = Simulator()
    egress = EgressRecorder(sim)
    bus = BackpressureBus()
    admission = AdmissionControl(
        sim, rate_pps=spec.budget_frac * spec.sustainable_pps,
        n_classes=3, bus=bus)
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=egress,
                     costs=OVERLOAD_COSTS, n_threads=2, seed=seed,
                     admission=admission)
    chain.start()
    workload = WorkloadGenerator(
        sim, chain.ingress,
        WorkloadSpec(base_pps=multiplier * spec.sustainable_pps,
                     n_flows=32, n_classes=3),
        n_queues=2, streams=RandomStreams(seed))

    probes = run_probes(egress, chain=chain)
    window_state = {"n": 0}

    def p99_window_us():
        samples = egress.latency.samples
        start = window_state["n"]
        window_state["n"] = len(samples)
        if len(samples) <= start:
            return None
        return percentile(samples[start:], 99) * 1e6

    probes["p99_latency_us"] = p99_window_us
    watchdog = SLOWatchdog(
        sim, [SLOObjective("p99_latency_us", "<=", spec.p99_limit_us)],
        probes=probes)
    watchdog.start()
    brownout = BrownoutController(sim, watchdog, admission=admission,
                                  buffer=chain.buffer)

    sim.run(until=duration_s)
    workload.stop()
    sim.run(until=duration_s + 20e-3)
    watchdog.stop()
    return chain, admission, workload, egress, brownout


def run(seed: int = 0) -> ExperimentResult:
    duration_s = 30e-3 if quick_mode() else 100e-3
    multipliers = [1.0, 4.0] if quick_mode() else LOAD_MULTIPLIERS
    spec = OverloadSpec()
    result = ExperimentResult(
        experiment="Overload: goodput/latency/shedding vs offered load "
                   f"(Ch-3, f=1, capacity {spec.sustainable_pps:g} pps, "
                   f"admission budget {spec.budget_frac:g}x)",
        headers=["Offered (x cap)", "Offered (pps)", "Goodput (pps)",
                 "p99 lat (us)", "Shed c0/c1/c2 (%)", "In-chain drops",
                 "Brownout"])
    for multiplier in multipliers:
        chain, admission, workload, egress, brownout = _run_point(
            multiplier, duration_s, seed, spec)
        shed_pct = []
        for cls in range(admission.n_classes):
            offered = admission.offered_by_class[cls]
            shed_pct.append(
                f"{admission.shed_by_class[cls] / offered:.0%}"
                if offered else "-")
        in_chain = (sum(r.server.nic.rx_dropped for r in chain.replicas)
                    + chain.buffer.overflow_dropped)
        result.add(
            f"{multiplier:g}x",
            round(workload.sent / duration_s),
            round(egress.count / duration_s),
            round(egress.latency.percentile_us(99), 1)
            if len(egress.latency) else 0.0,
            "/".join(shed_pct),
            in_chain,
            len(brownout.transitions))
    result.notes.append(
        "Shed %% per priority class (c2 highest) at the ingress gate -- "
        "the only legal drop point; in-chain drops must stay 0 at every "
        "load (PROTOCOL.md §12.2).")
    result.notes.append(
        "Past saturation goodput holds near the admission budget while "
        "brownout throttles toward sustainable capacity; excess load is "
        "shed lowest-class-first.")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
