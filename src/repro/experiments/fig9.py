"""Fig 9: throughput vs chain length (Ch-2 .. Ch-5).

"Monitors in these chains run eight threads with sharing level 1. ...
FTC's throughput is within 8.28--8.92 Mpps and 4.83--4.80 Mpps for
FTMB.  FTC imposes a 6--13% throughput overhead compared to NF.  The
throughput drop from increasing the chain length for FTC is within
2--7%, while that of FTMB+Snapshot is 13--39%."

FTMB+Snapshot adds a 6 ms stall every 50 ms per middlebox (§7.4).  In
quick mode the snapshot period/stall and NIC ring are scaled down
together (x10) so a laptop-sized window spans several snapshot
periods; the stall *fraction* -- which sets the throughput shape -- is
unchanged.
"""

from __future__ import annotations

from ..core.costs import DEFAULT_COSTS
from ..middlebox import ch_n
from .runner import ExperimentResult, quick_mode, saturation_throughput

CHAIN_LENGTHS = [2, 3, 4, 5]
SYSTEMS = ["NF", "FTC", "FTMB", "FTMB+Snapshot"]


def _costs_for(system: str):
    if system == "FTMB+Snapshot" and quick_mode():
        return DEFAULT_COSTS.with_overrides(
            snapshot_period_s=5e-3, snapshot_stall_s=0.6e-3,
            nic_queue_depth=128)
    return DEFAULT_COSTS


def _window_for(system: str):
    if system == "FTMB+Snapshot":
        # Span several snapshot periods.
        period = _costs_for(system).snapshot_period_s
        return (1e-3, 3 * period)
    return (None, None)


def run(n_threads: int = 8, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 9: throughput (Mpps) vs chain length",
        headers=["Chain length"] + SYSTEMS + ["FTC/FTMB"])
    for length in CHAIN_LENGTHS:
        row = [length]
        rates = {}
        for system in SYSTEMS:
            warm, window = _window_for(system)
            rates[system] = saturation_throughput(
                system,
                lambda n=length: ch_n(n, sharing_level=1,
                                      n_threads=n_threads),
                costs=_costs_for(system), n_threads=n_threads, f=1,
                warm_s=warm, window_s=window, seed=seed)
            row.append(round(rates[system], 2))
        row.append(round(rates["FTC"] / rates["FTMB"], 2))
        result.add(*row)
    result.notes.append(
        "Paper: FTC 8.28-8.92, FTMB ~4.8, FTC = 2-3.5x FTMB; "
        "FTMB+Snapshot drops 13-39% with chain length.")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
