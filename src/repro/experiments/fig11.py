"""Fig 11: per-packet latency CDF for Ch-3.

Same setup as Fig 10 at chain length 3: the tail of the distribution
is "only moderately higher than the minimum latency" for FTC --
in-chain replication avoids snapshot-style latency spikes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..middlebox import ch_n
from .runner import ExperimentResult, latency_under_load

SYSTEMS = ["NF", "FTC", "FTMB"]
LOAD_PPS = 2e6
PERCENTILES = [1, 25, 50, 75, 90, 99, 99.9]


def run(seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 11: Ch-3 per-packet latency CDF (us)",
        headers=["Percentile"] + SYSTEMS)
    samples: Dict[str, object] = {}
    for system in SYSTEMS:
        samples[system] = latency_under_load(
            system, lambda: ch_n(3, sharing_level=1, n_threads=1),
            rate_pps=LOAD_PPS, n_threads=1, f=1, seed=seed).latency
    for q in PERCENTILES:
        result.add(f"p{q}", *[round(samples[s].percentile_us(q), 1)
                              for s in SYSTEMS])
    spread = (samples["FTC"].percentile_us(99) /
              samples["FTC"].percentile_us(1))
    result.notes.append(
        f"FTC p99/p1 spread = {spread:.2f}x (paper: tail only moderately "
        "above the minimum; no snapshot spikes).")
    return result


def cdf_series(seed: int = 0) -> Dict[str, List[Tuple[float, float]]]:
    """Full CDF point series per system (for plotting)."""
    out = {}
    for system in SYSTEMS:
        egress = latency_under_load(
            system, lambda: ch_n(3, sharing_level=1, n_threads=1),
            rate_pps=LOAD_PPS, n_threads=1, f=1, seed=seed)
        out[system] = egress.latency.cdf_us(n_points=50)
    return out


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
