"""Lossy-link sweep: goodput/latency vs data-plane impairment (§8).

Not a paper figure -- the testbed's 10 GbE links are effectively
lossless -- but the natural question for any WAN/overlay deployment:
what does FTC's hop-by-hop reliability layer cost as chain links get
worse?  Each row impairs every chain link at a drop rate (plus fixed
duplication/reordering/corruption) and reports egress goodput, latency,
and how hard the retransmission machinery worked.  The first row is the
unimpaired baseline on raw links: with impairment off the reliable
channels are off too, so it matches the paper-mode figures exactly.
"""

from __future__ import annotations

from ..core import FTCChain
from ..metrics import EgressRecorder
from ..middlebox import ch_n
from ..net import TrafficGenerator, balanced_flows
from ..sim import RandomStreams, Simulator
from .runner import ExperimentResult, quick_mode

#: Per-link drop probabilities swept (full mode).
DROP_RATES = [0.0, 0.02, 0.05, 0.10]
#: Fixed companion impairments applied whenever drop > 0.
DUP_RATE = 0.02
REORDER_RATE = 0.02
CORRUPT_RATE = 0.01

OFFERED_PPS = 1e5


def _run_point(drop_rate: float, duration_s: float, seed: int):
    impaired = drop_rate > 0
    sim = Simulator()
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_n(2, n_threads=2), f=1, deliver=egress,
                     n_threads=2, seed=seed, reliable_links=impaired)
    chain.start()
    if impaired:
        chain.net.impair_data(
            drop_rate=drop_rate, dup_rate=DUP_RATE,
            reorder_rate=REORDER_RATE, corrupt_rate=CORRUPT_RATE,
            seed=seed)
    generator = TrafficGenerator(
        sim, chain.ingress, rate_pps=OFFERED_PPS,
        flows=balanced_flows(8, 2), streams=RandomStreams(seed),
        name=f"gen-{seed}")
    warm_s = duration_s * 0.2
    sim.run(until=warm_s)
    egress.throughput.start_window()
    egress.latency.start_after(warm_s)
    sim.run(until=duration_s)
    generator.stop()
    # Retransmission tails (RTO backoff caps at 2 ms) need a generous
    # drain before delivery ratios are meaningful.
    sim.run(until=duration_s + 10e-3)
    return chain, generator, egress


def run(seed: int = 0) -> ExperimentResult:
    duration_s = 10e-3 if quick_mode() else 40e-3
    drops = [0.0, 0.05] if quick_mode() else DROP_RATES
    result = ExperimentResult(
        experiment="Lossy links: FTC goodput/latency vs per-link drop rate "
                   f"(Ch-2, f=1, {OFFERED_PPS:g} pps offered)",
        headers=["Drop rate", "Goodput (Mpps)", "Mean lat (us)",
                 "p99 lat (us)", "Retransmits", "Link drops", "Delivered"])
    for drop_rate in drops:
        chain, generator, egress = _run_point(drop_rate, duration_s, seed)
        stats = chain.channel_stats()
        impair = chain.net.data_impairment_stats()
        delivered = (f"{chain.total_released()}/{generator.sent}"
                     if generator.sent else "0/0")
        result.add(
            f"{drop_rate:.2f}",
            round(egress.throughput.rate_mpps(), 4),
            round(egress.latency.mean_us(), 1) if len(egress.latency) else 0.0,
            round(egress.latency.percentile_us(99), 1)
            if len(egress.latency) else 0.0,
            stats.get("retransmissions", 0),
            impair["dropped"],
            delivered)
    result.notes.append(
        "Companion impairments at drop>0: dup=0.02 reorder=0.02 "
        "corrupt=0.01 per link; row 0.00 is raw links (no reliability "
        "layer), matching the paper-mode figures.")
    result.notes.append(
        "Delivered counts every offered packet: hop retransmission must "
        "recover all link losses (exactly-once egress, PROTOCOL.md §8).")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
