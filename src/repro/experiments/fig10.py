"""Fig 10: latency vs chain length (Ch-2 .. Ch-5).

Single-threaded Monitors under a 2 Mpps load (§7.4's setup, forced by
their traffic generator's limits).  "FTC's overhead compared to NF is
within 39--104 us for Ch-2 to Ch-5, translating to roughly 20 us
latency per middlebox.  The overhead of FTMB is within 64--171 us,
approximately 35 us per middlebox."
"""

from __future__ import annotations

from ..middlebox import ch_n
from .runner import ExperimentResult, latency_under_load

CHAIN_LENGTHS = [2, 3, 4, 5]
SYSTEMS = ["NF", "FTC", "FTMB"]
LOAD_PPS = 2e6


def run(seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 10: latency (us) vs chain length at 2 Mpps",
        headers=["Chain length"] + SYSTEMS +
                ["FTC-NF", "FTMB-NF"])
    for length in CHAIN_LENGTHS:
        row = [length]
        means = {}
        for system in SYSTEMS:
            egress = latency_under_load(
                system,
                lambda n=length: ch_n(n, sharing_level=1, n_threads=1),
                rate_pps=LOAD_PPS, n_threads=1, f=1, seed=seed)
            means[system] = egress.latency.mean_us()
            row.append(round(means[system], 1))
        row.append(round(means["FTC"] - means["NF"], 1))
        row.append(round(means["FTMB"] - means["NF"], 1))
        result.add(*row)
    result.notes.append(
        "Paper: FTC overhead 39-104 us (about 20 us per middlebox); "
        "FTMB overhead 64-171 us (about 35 us per middlebox).")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
