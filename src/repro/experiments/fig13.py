"""Fig 13: recovery time of Ch-Rec across cloud regions.

"We measure the recovery time of Ch-Rec when each of its middleboxes
fails separately.  Each middlebox is placed in a different region of
our Cloud testbed. ... The head of Firewall is deployed in the same
region as the orchestrator, while the heads of SimpleNAT and Monitor
are respectively deployed in a neighboring region and a remote region.
... initialization delays are 1.2, 49.8, and 5.3 ms for Firewall,
Monitor, and SimpleNAT; state recovery delays are in the range of
114.38 +/- 9.38 ms to 270.79 +/- 50.47 ms."
"""

from __future__ import annotations

from typing import Dict, List

from ..core import FTCChain
from ..core.costs import DEFAULT_COSTS
from ..metrics import EgressRecorder, confidence_interval95
from ..middlebox import ch_rec
from ..net import TrafficGenerator, balanced_flows
from ..orchestration import CloudNetwork, Orchestrator, place_chain
from ..sim import Simulator
from ..telemetry import Telemetry
from .runner import ExperimentResult, quick_mode

#: Chain placement: Firewall with the orchestrator ("core"), Monitor
#: remote, SimpleNAT neighboring (§7.5).
REGIONS = ["core", "remote", "neighbor"]
MBOX_AT = {"Firewall": 0, "Monitor": 1, "SimpleNAT": 2}


def _one_trial(position: int, seed: int) -> Dict[str, float]:
    sim = Simulator()
    net = CloudNetwork(sim, hop_delay_s=DEFAULT_COSTS.hop_delay_s,
                       bandwidth_bps=DEFAULT_COSTS.bandwidth_bps, seed=seed)
    egress = EgressRecorder(sim)
    # Sampling 0 packets: fig13 wants the recovery timeline, not spans.
    telemetry = Telemetry(max_trace_events=0)
    chain = FTCChain(sim, ch_rec(n_threads=2), f=1, deliver=egress,
                     costs=DEFAULT_COSTS, net=net, n_threads=2, seed=seed,
                     telemetry=telemetry)
    place_chain(chain, REGIONS)
    chain.start()
    orchestrator = Orchestrator(sim, chain, region="core")
    orchestrator.start()
    TrafficGenerator(sim, chain.ingress, rate_pps=5e4,
                     flows=balanced_flows(8, 2))
    # Build up some state before failing, so transfers are non-trivial.
    sim.schedule_callback(0.01, lambda: chain.fail_position(position))
    sim.run(until=0.55)
    event = orchestrator.history[0]
    # The figure's phase durations come from the stitched recovery
    # timeline; they are exactly the report's (same subtractions at the
    # same instants), and the cross-check enforces that.
    attempt = telemetry.timeline.committed_attempts()[0]
    if abs(attempt.total_s - event.report.total_s) > 1e-12:
        raise AssertionError(
            f"timeline total {attempt.total_s} != report "
            f"{event.report.total_s}")
    return {
        "initialization": attempt.phases["initialization"],
        "state_recovery": attempt.phases["state_recovery"],
        "total": attempt.total_s,
        "detection": event.detection_delay_s,
        "retries": float(event.report.control_retries +
                         orchestrator.control_retries),
    }


def run(trials: int = None) -> ExperimentResult:
    if trials is None:
        trials = 3 if quick_mode() else 10
    result = ExperimentResult(
        experiment="Figure 13: Ch-Rec recovery delay per failed middlebox",
        headers=["Middlebox", "Detect (ms)", "Init (ms)",
                 "State recovery (ms)", "Total (ms)", "Retries"])
    for mbox, position in MBOX_AT.items():
        samples: List[Dict[str, float]] = [
            _one_trial(position, seed) for seed in range(trials)]
        det_ms, _ = confidence_interval95(
            [s["detection"] * 1e3 for s in samples])
        init_ms, init_hw = confidence_interval95(
            [s["initialization"] * 1e3 for s in samples])
        rec_ms, rec_hw = confidence_interval95(
            [s["state_recovery"] * 1e3 for s in samples])
        tot_ms, _ = confidence_interval95(
            [s["total"] * 1e3 for s in samples])
        retries = sum(s["retries"] for s in samples) / len(samples)
        result.add(mbox, f"{det_ms:.1f}", f"{init_ms:.1f}",
                   f"{rec_ms:.1f} +/- {rec_hw:.1f}", f"{tot_ms:.1f}",
                   f"{retries:.1f}")
    result.notes.append(
        "Paper: init 1.2 / 49.8 / 5.3 ms (Firewall / Monitor / "
        "SimpleNAT); state recovery 114-271 ms, WAN-dominated, with "
        "wide confidence intervals.")
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
