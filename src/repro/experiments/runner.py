"""Shared measurement harness for the paper's experiments.

Two measurement styles mirror §7.1's methodology:

* :func:`saturation_throughput` -- offer more load than the system can
  carry (pktgen style) and report the egress rate over a window after
  a warm-up.
* :func:`latency_under_load` -- offer a fixed (Poisson) load below
  saturation and report latency statistics (MoonGen style).

A global ``quick`` flag (set by benchmarks, overridable with the
``REPRO_FULL=1`` environment variable) scales simulated windows so the
whole harness stays runnable on a laptop; the *relative* results are
stable well below the full windows because the simulation is
deterministic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.costs import CostModel, DEFAULT_COSTS
from ..metrics import EgressRecorder, format_series, format_table
from ..middlebox.base import Middlebox
from ..net import TrafficGenerator, balanced_flows
from ..sim import RandomStreams, Simulator
from .systems import build_system

__all__ = [
    "ExperimentResult",
    "quick_mode",
    "saturation_throughput",
    "latency_under_load",
    "SATURATING_RATE_PPS",
]

#: Offered load used to saturate systems (comfortably above the NIC cap).
SATURATING_RATE_PPS = 12e6


def quick_mode() -> bool:
    """Quick windows by default; REPRO_FULL=1 requests long windows."""
    return os.environ.get("REPRO_FULL", "0") != "1"


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure plus render helpers."""

    experiment: str
    headers: List[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *row) -> None:
        self.rows.append(row)

    def column(self, name: str) -> List:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        text = format_table(self.headers, self.rows, title=self.experiment)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text


def _drive(system, sim, rate_pps: float, n_flows: int, packet_size: int,
           arrivals: str, seed: int) -> TrafficGenerator:
    return TrafficGenerator(
        sim, system.ingress, rate_pps=rate_pps,
        flows=balanced_flows(n_flows, system.n_threads),
        packet_size=packet_size, arrivals=arrivals,
        streams=RandomStreams(seed), name=f"gen-{seed}")


def saturation_throughput(kind: str, middleboxes: Callable[[], List[Middlebox]],
                          costs: CostModel = DEFAULT_COSTS,
                          n_threads: int = 8, f: int = 1,
                          rate_pps: float = SATURATING_RATE_PPS,
                          packet_size: int = 256, n_flows: int = 64,
                          warm_s: Optional[float] = None,
                          window_s: Optional[float] = None,
                          seed: int = 0,
                          system_out: Optional[list] = None) -> float:
    """Maximum sustainable throughput (Mpps) under overload."""
    if warm_s is None:
        warm_s = 0.8e-3 if quick_mode() else 5e-3
    if window_s is None:
        window_s = 2e-3 if quick_mode() else 10e-3
    sim = Simulator()
    egress = EgressRecorder(sim)
    system = build_system(kind, sim, middleboxes(), egress, costs=costs,
                          n_threads=n_threads, f=f, seed=seed)
    system.start()
    _drive(system, sim, rate_pps, n_flows, packet_size, "deterministic", seed)
    sim.run(until=warm_s)
    egress.throughput.start_window()
    sim.run(until=warm_s + window_s)
    if system_out is not None:
        system_out.append(system)
    return egress.throughput.rate_mpps()


def latency_under_load(kind: str, middleboxes: Callable[[], List[Middlebox]],
                       rate_pps: float, costs: CostModel = DEFAULT_COSTS,
                       n_threads: int = 8, f: int = 1,
                       packet_size: int = 256, n_flows: int = 64,
                       warm_s: Optional[float] = None,
                       window_s: Optional[float] = None,
                       arrivals: str = "poisson",
                       seed: int = 0) -> EgressRecorder:
    """Latency statistics at a fixed offered load."""
    if warm_s is None:
        warm_s = 0.5e-3 if quick_mode() else 3e-3
    if window_s is None:
        window_s = 2.5e-3 if quick_mode() else 10e-3
    sim = Simulator()
    egress = EgressRecorder(sim)
    system = build_system(kind, sim, middleboxes(), egress, costs=costs,
                          n_threads=n_threads, f=f, seed=seed)
    system.start()
    generator = _drive(system, sim, rate_pps, n_flows, packet_size,
                       arrivals, seed)
    sim.run(until=warm_s)
    egress.latency.start_after(warm_s)
    egress.throughput.start_window()
    sim.run(until=warm_s + window_s)
    generator.stop()
    # Let in-flight packets drain so the sample is complete.
    sim.run(until=warm_s + window_s + 0.5e-3)
    return egress
