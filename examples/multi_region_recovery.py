"""Multi-region deployment and WAN-dominated recovery (Fig 13 style).

Deploys Ch-Rec across three cloud regions, runs an orchestrator with
heartbeat detection, fails each middlebox in turn, and reports the
recovery-time breakdown -- showing how the orchestrator-to-region RTT
drives initialization delay and inter-region RTTs drive state
recovery.

Run:  python examples/multi_region_recovery.py
"""

from repro.core import FTCChain
from repro.metrics import EgressRecorder, format_table
from repro.middlebox import ch_rec
from repro.net import TrafficGenerator, balanced_flows
from repro.orchestration import (
    CloudNetwork,
    Orchestrator,
    place_chain,
    validate_isolation,
)
from repro.sim import Simulator

REGIONS = ["core", "remote", "neighbor"]


def one_failure(position):
    sim = Simulator()
    net = CloudNetwork(sim, seed=position)
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_rec(n_threads=2), f=1, deliver=egress,
                     net=net, n_threads=2)
    place_chain(chain, REGIONS)
    assert validate_isolation(chain) == []
    chain.start()
    orchestrator = Orchestrator(sim, chain, region="core")
    orchestrator.start()
    TrafficGenerator(sim, chain.ingress, rate_pps=5e4,
                     flows=balanced_flows(8, 2))
    sim.schedule_callback(0.01, lambda: chain.fail_position(position))
    sim.run(until=0.6)
    return orchestrator.history[0]


def main():
    rows = []
    for position, mbox in enumerate(["Firewall", "Monitor", "SimpleNAT"]):
        event = one_failure(position)
        report = event.report
        rows.append((mbox, REGIONS[position],
                     f"{event.detection_delay_s * 1e3:.1f}",
                     f"{report.initialization_s * 1e3:.1f}",
                     f"{report.state_recovery_s * 1e3:.1f}",
                     f"{report.total_s * 1e3:.1f}"))
    print(format_table(
        ["Middlebox", "Region", "Detection (ms)", "Init (ms)",
         "State recovery (ms)", "Recovery total (ms)"],
        rows, title="Ch-Rec recovery across SAVI-like regions"))
    print("\nInitialization tracks the orchestrator-to-region RTT; state")
    print("recovery is dominated by WAN round trips between group members.")


if __name__ == "__main__":
    main()
