"""Vertical scaling: grow a bottleneck middlebox from 1 to 4 cores.

§1 claims FTC's dependency vectors "easily support vertical scaling
by replacing a running middlebox with a new instance with more CPU
cores" -- replicas may run with a different thread count than the
middlebox.  This example saturates a single-core Monitor, rescales it
to four cores mid-run, and shows throughput rising while all state
carries over.

Run:  python examples/vertical_scaling.py
"""

from repro.core import FTCChain, rescale_position
from repro.metrics import EgressRecorder
from repro.middlebox import Monitor
from repro.net import TrafficGenerator, balanced_flows
from repro.sim import Simulator


def main():
    sim = Simulator()
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, [Monitor(name="mon", sharing_level=1,
                                   n_threads=8)],
                     f=1, deliver=egress, n_threads=1)
    chain.start()
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=12e6,
                                 flows=balanced_flows(32, 1))

    checkpoints = []

    def observe(sim):
        while True:
            egress.throughput.start_window()
            yield sim.timeout(1e-3)
            checkpoints.append((sim.now, egress.throughput.rate_mpps()))

    def scale(sim):
        yield sim.timeout(3e-3)
        report = yield sim.process(rescale_position(chain, 0, 4))
        print(f"[{sim.now * 1e3:.2f} ms] rescaled position 0: "
              f"{report.old_threads} -> {report.new_threads} threads in "
              f"{report.total_s * 1e3:.2f} ms "
              f"({report.bytes_transferred} B of state moved)")

    sim.process(observe(sim))
    sim.process(scale(sim))
    sim.run(until=8e-3)
    generator.stop()
    sim.run(until=9.5e-3)  # drain in-flight packets before inspecting

    print("\nthroughput per 1 ms window:")
    for when, mpps in checkpoints:
        bar = "#" * int(mpps * 4)
        print(f"  t={when * 1e3:4.1f} ms  {mpps:5.2f} Mpps  {bar}")

    monitor = chain.middleboxes[0]
    stores = [chain.store_of("mon", pos)
              for pos in chain.group_positions(0)]
    print(f"\ncounts survived the rescale: "
          f"{monitor.total_count(stores[0])} packets counted, "
          f"replicas consistent = {stores[0] == stores[1]}")


if __name__ == "__main__":
    main()
