"""A realistic enterprise chain under connection churn.

The paper's introduction motivates chains like "intrusion detection
system -> firewall -> NAT" for data-center egress traffic.  This
example deploys StatefulFirewall -> PortCountIDS -> TokenBucketPolicer
-> MazuNAT with f=1 fault tolerance, drives it with churning
connections (flows arrive, live briefly, depart), and prints per-
middlebox statistics plus replication health.

Run:  python examples/enterprise_chain.py
"""

from repro.core import FTCChain
from repro.metrics import EgressRecorder, format_table
from repro.middlebox import (
    MazuNAT,
    PortCountIDS,
    StatefulFirewall,
    TokenBucketPolicer,
)
from repro.net import FlowChurnGenerator
from repro.sim import RandomStreams, Simulator


def main():
    sim = Simulator()
    egress = EgressRecorder(sim)
    middleboxes = [
        StatefulFirewall(name="firewall"),
        PortCountIDS(name="ids", alert_threshold=500, watched_ports=(80,)),
        TokenBucketPolicer(name="policer", rate_pps=30_000, burst=50),
        MazuNAT(name="nat"),
    ]
    chain = FTCChain(sim, middleboxes, f=1, deliver=egress, n_threads=4)
    chain.start()

    generator = FlowChurnGenerator(
        sim, chain.ingress,
        flow_arrival_rate=2_000,     # connections/second
        flow_lifetime_s=5e-3,
        per_flow_pps=40_000,
        streams=RandomStreams(42))

    sim.run(until=0.05)
    generator.stop()
    sim.run(until=0.06)

    print(f"flows: {generator.flows_started} started, "
          f"{generator.flows_finished} finished")
    print(f"packets: {generator.packets_sent} offered, "
          f"{chain.total_released()} released, "
          f"mean latency {egress.latency.mean_us():.1f} us\n")

    rows = [(m.name, m.describe(), m.packets_processed, m.packets_dropped)
            for m in middleboxes]
    print(format_table(["middlebox", "function", "processed", "dropped"],
                       rows))

    print("\nreplication health (stores identical across each group):")
    for index, mbox in enumerate(middleboxes):
        stores = [chain.store_of(mbox.name, pos)
                  for pos in chain.group_positions(index)]
        consistent = all(s == stores[0] for s in stores)
        print(f"  {mbox.name}: {len(stores[0])} keys, "
              f"replicas consistent = {consistent}")


if __name__ == "__main__":
    main()
