"""Writing your own fault-tolerant middlebox.

Implements a port-scan detector (the paper's IDS example: shared
"port-counts" state updated by every thread) against the public
middlebox API, registers it, and runs it in an FTC chain.  The only
requirement FTC places on a middlebox is that all state goes through
the transaction context (§4.1) and that ``process`` is deterministic
given (store, packet).

Run:  python examples/custom_middlebox.py
"""

from repro.core import FTCChain
from repro.metrics import EgressRecorder
from repro.middlebox import DROP, Middlebox, PASS, register, create
from repro.net import FlowKey, Packet, TrafficGenerator, balanced_flows, ip
from repro.sim import Simulator


class PortScanDetector(Middlebox):
    """Flags sources that touch too many distinct destination ports.

    State layout:
      ("ports", src_ip) -> tuple of distinct dst ports seen (bounded)
      ("flagged", src_ip) -> True once the source exceeds the threshold
    """

    def __init__(self, name="scan-detector", threshold=16, **kwargs):
        super().__init__(name, **kwargs)
        self.threshold = threshold

    def process(self, packet, ctx):
        self.count_packet(ctx)
        src = packet.flow.src_ip
        if ctx.read(("flagged", src)):
            self.count_drop(ctx)
            return DROP
        ports = ctx.read(("ports", src), ())
        port = packet.flow.dst_port
        if port not in ports:
            ports = ports + (port,)
            if len(ports) > self.threshold:
                ctx.write(("flagged", src), True)
                self.count_drop(ctx)
                return DROP
            ctx.write(("ports", src), ports)
        return PASS


def main():
    register("port-scan-detector", PortScanDetector)

    sim = Simulator()
    egress = EgressRecorder(sim)
    detector = create("port-scan-detector", threshold=16)
    chain = FTCChain(sim, [detector], f=1, deliver=egress, n_threads=2)
    chain.start()

    # Normal traffic over a few flows...
    TrafficGenerator(sim, chain.ingress, rate_pps=5e5,
                     flows=balanced_flows(8, 2), count=2000)

    # ...plus one scanner sweeping destination ports.
    def scanner(sim):
        attacker = ip("10.66.6.6")
        victim = ip("192.168.0.1")
        for port in range(1, 200):
            yield sim.timeout(20e-6)
            chain.ingress(Packet(flow=FlowKey(attacker, victim, 4444, port),
                                 created_at=sim.now))

    sim.process(scanner(sim))
    sim.run(until=0.05)

    print(f"released {chain.total_released()} packets; "
          f"detector dropped {detector.packets_dropped}")
    # The flag itself is fault-tolerant state: both replicas agree.
    for position in chain.group_positions(0):
        store = chain.store_of(detector.name, position)
        print(f"position {position}: scanner flagged = "
              f"{store.get(('flagged', ip('10.66.6.6')))}")


if __name__ == "__main__":
    main()
