"""Head-to-head: NF vs FTC vs FTMB on one chain.

A miniature of the paper's §7.4 evaluation: saturate a chain of three
Monitors under each system and compare maximum throughput and latency
under a moderate load.

Run:  python examples/compare_systems.py          (quick)
      REPRO_FULL=1 python examples/compare_systems.py
"""

from repro.experiments import latency_under_load, saturation_throughput
from repro.metrics import format_table
from repro.middlebox import ch_n

SYSTEMS = ["NF", "FTC", "FTMB"]


def main():
    rows = []
    for system in SYSTEMS:
        tput = saturation_throughput(
            system, lambda: ch_n(3, sharing_level=1, n_threads=8),
            n_threads=8, f=1)
        egress = latency_under_load(
            system, lambda: ch_n(3, sharing_level=1, n_threads=8),
            rate_pps=2e6, n_threads=8, f=1)
        rows.append((system, round(tput, 2),
                     round(egress.latency.mean_us(), 1),
                     round(egress.latency.percentile_us(99), 1)))
    print(format_table(
        ["System", "Max throughput (Mpps)", "Mean latency (us)",
         "p99 latency (us)"],
        rows, title="Ch-3 (Monitors, 8 threads, sharing level 1)"))
    nf, ftc, ftmb = (row[1] for row in rows)
    print(f"\nFTC achieves {ftc / ftmb:.2f}x FTMB's throughput at "
          f"{100 * (1 - ftc / nf):.1f}% overhead vs NF "
          f"(paper: 2-3.5x FTMB, 6-13% vs NF).")


if __name__ == "__main__":
    main()
