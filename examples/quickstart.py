"""Quickstart: a fault-tolerant service function chain in ~40 lines.

Builds the paper's Ch-Rec chain (Firewall -> Monitor -> SimpleNAT)
with f=1 fault tolerance, pushes traffic through it, fails a server
mid-run, recovers it, and shows that every released packet's state
survived.

Run:  python examples/quickstart.py
"""

from repro.core import FTCChain, recover_positions
from repro.metrics import EgressRecorder
from repro.middlebox import ch_rec
from repro.net import TrafficGenerator, balanced_flows
from repro.sim import Simulator


def main():
    sim = Simulator()
    egress = EgressRecorder(sim)

    # A 3-middlebox chain tolerating f=1 failure, 2 threads per server.
    chain = FTCChain(sim, ch_rec(n_threads=2), f=1, deliver=egress,
                     n_threads=2)
    chain.start()

    generator = TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                                 flows=balanced_flows(16, 2))

    def fail_and_recover(sim):
        yield sim.timeout(0.005)
        print(f"[{sim.now * 1e3:6.2f} ms] failing the Monitor's server...")
        chain.fail_position(1)
        report = yield sim.process(recover_positions(chain, [1]))
        print(f"[{sim.now * 1e3:6.2f} ms] recovered in "
              f"{report.total_s * 1e3:.2f} ms "
              f"(init {report.initialization_s * 1e3:.2f}, "
              f"state {report.state_recovery_s * 1e3:.2f}, "
              f"reroute {report.rerouting_s * 1e3:.2f})")

    sim.process(fail_and_recover(sim))
    sim.run(until=0.02)
    generator.stop()
    sim.run(until=0.025)  # drain

    released = chain.total_released()
    print(f"\noffered {chain.packets_in} packets, released {released} "
          f"(in-flight packets at the failed server are lost, as expected)")
    print(f"mean latency: {egress.latency.mean_us():.1f} us, "
          f"p99: {egress.latency.percentile_us(99):.1f} us")

    # Every released packet's Monitor increment is present at BOTH
    # replicas of the Monitor's replication group.
    monitor = chain.middleboxes[1]
    for position in chain.group_positions(1):
        store = chain.store_of("monitor", position)
        count = monitor.total_count(store)
        print(f"monitor count at position {position}: {count} "
              f"(>= released: {count >= released})")


if __name__ == "__main__":
    main()
