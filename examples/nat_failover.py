"""Enterprise NAT failover: connection persistence across failures.

The paper's §3.2 motivation: a NAT must keep directing each connection
to the same translation even when its server dies.  This example runs
a MazuNAT + Monitor chain under an orchestrator with heartbeat failure
detection, kills the NAT's server mid-run, and verifies that no flow's
external port changed across the failover.

Run:  python examples/nat_failover.py
"""

from collections import defaultdict

from repro.core import FTCChain
from repro.metrics import EgressRecorder
from repro.middlebox import MazuNAT, Monitor
from repro.net import TrafficGenerator, balanced_flows
from repro.orchestration import Orchestrator
from repro.sim import Simulator


def main():
    sim = Simulator()
    egress = EgressRecorder(sim, keep_packets=True)

    chain = FTCChain(
        sim,
        [MazuNAT(name="nat"), Monitor(name="mon", n_threads=2)],
        f=1, deliver=egress, n_threads=2)
    chain.start()

    orchestrator = Orchestrator(sim, chain)
    orchestrator.start()

    generator = TrafficGenerator(sim, chain.ingress, rate_pps=5e5,
                                 flows=balanced_flows(12, 2))

    # Fail the NAT's server (position 0) at t = 10 ms; the orchestrator
    # detects it via missed heartbeats and repairs the chain.
    sim.schedule_callback(0.01, lambda: chain.fail_position(0))
    sim.run(until=0.05)
    generator.stop()
    sim.run(until=0.055)

    event = orchestrator.history[0]
    print(f"failure detected after {event.detection_delay_s * 1e3:.1f} ms; "
          f"recovery took {event.report.total_s * 1e3:.2f} ms")
    print(f"released {chain.total_released()} / {chain.packets_in} packets")

    # Group released packets by their ORIGINAL flow (the Monitor sees
    # translated packets; we track the external source port per the
    # translated flow's destination-side identity).
    ports_per_connection = defaultdict(set)
    for packet in egress.packets:
        connection = (packet.flow.dst_ip, packet.flow.dst_port,
                      packet.meta.get("gen"))
        ports_per_connection[packet.flow.src_port].add(packet.flow.src_ip)

    translations = {p.flow.src_port for p in egress.packets}
    print(f"distinct external ports used: {len(translations)} "
          f"(12 flows -> must be <= 12)")
    assert len(translations) <= 12, "a flow was re-translated after failover!"
    print("connection persistence held across the NAT failover.")


if __name__ == "__main__":
    main()
